(* Tests for the randomized fault-space sweep (Wd_harness.Sweep): grid
   determinism from the base seed, generator validity (every world is
   well-formed and built through the validating constructors), and the
   headline guarantee — running a grid across a real multi-domain pool is
   byte-identical to running it sequentially. *)

module Sweep = Wd_harness.Sweep
module Pool = Wd_parallel.Pool
module Catalog = Wd_faults.Catalog
module Topology = Wd_cluster.Topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- grid generation --- *)

let test_grid_deterministic () =
  let g1 = Sweep.grid ~seed:42 ~worlds:150 () in
  let g2 = Sweep.grid ~seed:42 ~worlds:150 () in
  check "same seed, same grid" true (g1 = g2);
  check_int "asked-for world count" 150 (List.length g1);
  let g3 = Sweep.grid ~seed:7 ~worlds:150 () in
  check "different seed, different grid" true (g1 <> g3);
  Alcotest.(check (list pass)) "empty grid" [] (Sweep.grid ~worlds:0 ());
  match Sweep.grid ~worlds:(-1) () with
  | _ -> Alcotest.fail "expected Invalid_argument for negative count"
  | exception Invalid_argument _ -> ()

let test_grid_validity () =
  let eligible_sids =
    List.filter_map
      (fun (s : Catalog.scenario) ->
        if s.Catalog.special = Some "crash" then None else Some s.Catalog.sid)
      Catalog.all
  in
  let worlds = Sweep.grid ~seed:11 ~worlds:600 () in
  List.iter
    (fun w ->
      match w with
      | Sweep.Scenario_world { sw_sid; sw_warmup; sw_observe; _ } ->
          check ("eligible sid: " ^ sw_sid) true (List.mem sw_sid eligible_sids);
          check "no slow-burn sids in short windows" false
            (List.mem sw_sid [ "kvs-mem-leak"; "cs-compaction-spin" ]);
          check "warmup covers baseline learning" true
            (sw_warmup >= Wd_sim.Time.sec 8);
          check "observe window bounded" true
            (sw_observe >= Wd_sim.Time.sec 12
            && sw_observe <= Wd_sim.Time.sec 15)
      | Sweep.Fault_free_world { ff_system; _ } ->
          check "known system" true
            (List.mem ff_system Wd_harness.Systems.all_systems)
      | Sweep.Fleet_world { fl_csid; fl_topology; _ } ->
          let n = Topology.nodes fl_topology in
          check "fleet size in quorum range" true (n >= 4 && n <= 6);
          (* find validates existence; the scenario must fit the fleet *)
          let s = Wd_faults.Cluster_catalog.find fl_csid in
          check "scenario fits topology" true
            (Wd_faults.Cluster_catalog.max_node_index s < n);
          check "failover cell excluded" true
            (fl_csid <> "fleet-leader-limplock"))
    worlds;
  (* all three world kinds are actually sampled at this size *)
  let count p = List.length (List.filter p worlds) in
  let scenarios =
    count (function Sweep.Scenario_world _ -> true | _ -> false)
  in
  let fault_free =
    count (function Sweep.Fault_free_world _ -> true | _ -> false)
  in
  let fleet = count (function Sweep.Fleet_world _ -> true | _ -> false) in
  check "scenario worlds dominate" true (scenarios > fault_free);
  check "fault-free worlds present" true (fault_free > 0);
  check "fleet worlds present" true (fleet > 0)

(* --- execution: byte-identity and the pinned oracle aggregate ---

   [Pool.global] clamps to the host's core count, so to genuinely exercise
   the multi-domain path on any host the identity test drives an explicit
   uncapped pool ([Pool.with_pool]) against a plain sequential map. *)

let test_parallel_byte_identity () =
  let worlds = Sweep.grid ~seed:42 ~worlds:60 () in
  let seq = List.map Sweep.run_world worlds in
  let par =
    Pool.with_pool ~jobs:4 (fun p -> Pool.map p Sweep.run_world worlds)
  in
  check "jobs=4 outcomes byte-identical to sequential" true (seq = par);
  Alcotest.(check string)
    "digests agree" (Sweep.digest seq) (Sweep.digest par);
  (* the public entry point (persistent pool) agrees too, at any width *)
  let _, via_run = Sweep.run ~jobs:4 ~seed:42 ~worlds:60 () in
  check "Sweep.run agrees with sequential map" true (seq = via_run);
  (* pinned aggregate for the seed-42 60-world grid: any drift in the
     generators, catalog, detectors or scheduler shows up here first *)
  let s = Sweep.summarize ~seed:42 seq in
  check_int "worlds" 60 s.Sweep.s_worlds;
  check_int "scenario worlds" 50 s.Sweep.s_scenario_worlds;
  check_int "fault-free worlds" 8 s.Sweep.s_fault_free_worlds;
  check_int "fleet worlds" 2 s.Sweep.s_fleet_worlds;
  check_int "oracle ok" 60 s.Sweep.s_ok;
  check_int "expected detections" 48 s.Sweep.s_expect_detect;
  check_int "actual detections" 48 s.Sweep.s_detected;
  check_int "unexpected detections" 0 s.Sweep.s_unexpected_detect;
  check_int "false alarms" 0 s.Sweep.s_false_alarms

(* --- the 1000-world sweep's single honest miss, pinned by name ---

   The full seed-42 E20 grid grades 999/1000 worlds against their oracles;
   the one miss is this kvs-deadlock world. Diagnosis (see also
   test_infer's race test): at seed 15233 the AB/BA lock collision only
   wedges ~18s after injection — 3s past the world's 15s observe window —
   so the miss is a window long-tail, not a detector gap. If this test
   starts failing because the world is suddenly detected, the interleaving
   or the detectors changed: re-run the full sweep (repro faultspace) and
   move this pin to whatever the new aggregate says. *)

let missed_world =
  Sweep.Scenario_world
    {
      sw_sid = "kvs-deadlock";
      sw_mode = Wd_harness.Systems.Wd_generated;
      sw_seed = 15233;
      sw_warmup = Wd_sim.Time.sec 8;
      sw_observe = Wd_sim.Time.sec 15;
    }

let test_pinned_e20_miss () =
  Alcotest.(check string)
    "world identity"
    "scenario:kvs-deadlock:generated:seed=15233:w=8s:o=15s"
    (Sweep.world_id missed_world);
  let o = Sweep.run_world missed_world in
  check "oracle expects a detection" true o.Sweep.o_expect_detect;
  check "the window long-tail still escapes" false o.Sweep.o_detected;
  check_int "and without false alarms" 0 o.Sweep.o_false_alarms;
  check "graded as a miss" false o.Sweep.o_ok

let () =
  Alcotest.run "wd_sweep"
    [
      ( "grid",
        [
          Alcotest.test_case "deterministic from seed" `Quick
            test_grid_deterministic;
          Alcotest.test_case "every world well-formed" `Quick
            test_grid_validity;
        ] );
      ( "run",
        [
          Alcotest.test_case "parallel byte-identity + pinned aggregate"
            `Slow test_parallel_byte_identity;
          Alcotest.test_case "pinned E20 long-tail miss" `Quick
            test_pinned_e20_miss;
        ] );
    ]
