(* End-to-end tests for the fleet aggregation plane (wd_cluster): each case
   boots a full 5-node cstore fleet in one deterministic scheduler world,
   injects one cluster-scoped scenario, and checks the fleet plane's
   verdicts. cstore cells are used throughout — they are an order of
   magnitude cheaper than zkmini, and the correlation rules under test are
   system-agnostic. *)

module Sim = Wd_cluster.Sim
module Fleet = Wd_cluster.Fleet
module Catalog = Wd_faults.Cluster_catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cstore_cfg = { Sim.default_config with Sim.system = "cstore" }
let run csid = Sim.run ~cfg:cstore_cfg csid

let test_limplock_indicts_victim () =
  let r = run "fleet-limplock" in
  Alcotest.(check (list string)) "victim indicted" [ "n2" ] r.Sim.cr_indicted_nodes;
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  check "component named" true (r.Sim.cr_component <> None);
  let truth =
    Catalog.truth_components (Catalog.find "fleet-limplock") ~system:"cstore"
  in
  (match r.Sim.cr_component with
  | Some c -> check "component in truth set" true (List.mem c truth)
  | None -> ());
  check "detection latency recorded" true (r.Sim.cr_first_latency <> None)

let test_asym_partition_indicts_links () =
  let r = run "fleet-asym-partition" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "cut pair indicted" true
    (List.mem ("n1", "n3") r.Sim.cr_indicted_links);
  check "graded as expected" true r.Sim.cr_as_expected

let test_overload_stays_quiet () =
  let r = run "fleet-overload" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "overload recognised" true r.Sim.cr_overloaded;
  check "graded as expected" true r.Sim.cr_as_expected

let test_fault_free_stays_quiet () =
  let r = run "fleet-fault-free" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "no overload recorded" false r.Sim.cr_overloaded;
  check "graded as expected" true r.Sim.cr_as_expected;
  check "membership stayed busy" true (r.Sim.cr_membership_events = 0);
  check "checkers attached fleet-wide" true (r.Sim.cr_checker_count > 0);
  check "workload healthy" true (r.Sim.cr_workload_ok > 0.9)

(* A cell is a pure function of (seed, system, scenario): two runs of the
   same cell must produce structurally identical results — the property the
   campaign engine relies on to fan cells over domains. *)
let test_cell_determinism () =
  let a = run "fleet-limplock" in
  let b = run "fleet-limplock" in
  check "identical results" true (a = b);
  let c = Sim.run ~cfg:{ cstore_cfg with Sim.seed = 7 } "fleet-limplock" in
  check_int "seed recorded" 7 c.Sim.cr_seed

let () =
  Alcotest.run "wd_cluster"
    [
      ( "fleet",
        [
          Alcotest.test_case "limplock indicts victim node and component"
            `Quick test_limplock_indicts_victim;
          Alcotest.test_case "asym partition indicts links only" `Quick
            test_asym_partition_indicts_links;
          Alcotest.test_case "overload yields no indictment" `Quick
            test_overload_stays_quiet;
          Alcotest.test_case "fault-free stays quiet" `Quick
            test_fault_free_stays_quiet;
          Alcotest.test_case "cells are deterministic" `Quick
            test_cell_determinism;
        ] );
    ]
