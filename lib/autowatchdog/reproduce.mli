(** Failure reproduction (§5.2): replay a mimic checker and its captured
    payload in a fresh, sealed simulation — optionally with a fault
    re-injected — turning a production alarm into a deterministic repro.

    The replay environment is synthesised from the reduced unit itself;
    everything the checker needs travels in the report. *)

type outcome =
  | Reproduced of Wd_watchdog.Report.fkind
  | Not_reproduced       (** the unit passes in a clean environment *)
  | Unknown_checker
  | Context_incomplete
  | Wire_error of string (** evidence bytes did not decode *)

val run :
  ?fault:Wd_env.Faultreg.fault ->
  ?timeout:int64 ->
  Generate.generated ->
  report:Wd_watchdog.Report.t ->
  outcome

val run_wire :
  ?fault:Wd_env.Faultreg.fault ->
  ?timeout:int64 ->
  Generate.generated ->
  wire:string ->
  outcome
(** Decode a {!Wd_watchdog.Report.to_wire}-encoded report (e.g. the
    evidence a fleet leader ships with a [Recover] command) and replay it —
    cross-node reproduction from bytes alone. *)

val pp_outcome : Format.formatter -> outcome -> unit
