lib/analysis/regions.ml: Callgraph Fmt List String Wd_ir
