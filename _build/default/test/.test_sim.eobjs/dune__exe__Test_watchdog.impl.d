test/test_watchdog.ml: Alcotest Bytes Checker Driver Fmt List Policy Report String Wcontext Wd_ir Wd_sim Wd_watchdog
