lib/ir/builder.ml: Ast List Loc Wd_sim
