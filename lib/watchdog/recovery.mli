(** Cheap recovery (§5.2): microreboot the component a watchdog report
    pinpoints, instead of restarting the whole process.

    A component is a named set of functions plus a respawn closure.
    {!action} (wired via {!Driver.on_report}) reboots the component owning
    the report's function; {!supervise} additionally sweeps for components
    whose task died of an exception. Per-component backoff and a restart
    budget prevent reboot storms; exhausting the budget records an
    escalation instead. *)

type t

type event = { ev_at : int64; ev_component : string; ev_reason : string }

val create : ?backoff:int64 -> ?max_restarts:int -> Wd_sim.Sched.t -> t

val register :
  t ->
  name:string ->
  funcs:string list ->
  respawn:(unit -> Wd_sim.Sched.task) ->
  task:Wd_sim.Sched.task ->
  unit

val action : t -> Report.t -> unit
(** Driver action: map the report's pinpointed function to its component
    and microreboot it. Reports without localisation are ignored. *)

val recover_function : t -> func:string -> reason:string -> bool
(** Command entry point for externally-driven recovery (fleet [Recover]
    commands): microreboot the component owning [func]. Returns whether the
    function mapped to a registered component; the reboot itself remains
    subject to backoff and the restart budget. *)

val supervise : ?period:int64 -> t -> Wd_sim.Sched.task
(** Spawn the supervision sweep (reboots components whose task failed). *)

val events : t -> event list
val escalations : t -> string list
val restarts : t -> name:string -> int
val pp_event : Format.formatter -> event -> unit
