(* Vulnerable-operation classification (§4.1 step 2).

   "Our criteria for selecting such operations are those that are vulnerable
   to fail in production due to either environment issues or bugs, such as
   I/O, synchronization, resource, and communication related method
   invocations. We also support annotations for developers to tag customized
   vulnerable methods." *)

open Wd_ir.Ast

type config = {
  io_vulnerable : bool;        (* disk operations *)
  comm_vulnerable : bool;      (* network sends *)
  sync_vulnerable : bool;      (* lock acquisition (Sync blocks) *)
  resource_vulnerable : bool;  (* memory allocation *)
  queue_vulnerable : bool;     (* internal queue insertion *)
  extra_kinds : op_kind list;  (* configured additions, e.g. State_set *)
  annotated_funcs : string list;  (* developer-tagged: every op inside counts *)
}

let default =
  {
    io_vulnerable = true;
    comm_vulnerable = true;
    sync_vulnerable = true;
    resource_vulnerable = true;
    queue_vulnerable = false;
    extra_kinds = [];
    annotated_funcs = [];
  }

let kind_vulnerable cfg = function
  | Disk_write | Disk_append | Disk_read | Disk_sync | Disk_delete | Disk_list ->
      cfg.io_vulnerable
  | Disk_exists -> false (* cheap stat; monitoring it adds noise *)
  | Net_send -> cfg.comm_vulnerable
  | Net_recv -> false (* polling an idle inbox is not a fault (see interp) *)
  | Queue_put -> cfg.queue_vulnerable
  | Queue_get -> false
  | Mem_alloc -> cfg.resource_vulnerable
  | Mem_free -> false
  | State_get | State_set -> List.mem State_set cfg.extra_kinds
  | Sleep_op | Log_op -> false

(* A vulnerable occurrence: either an effectful [Op] or a [Sync] lock
   acquisition. [enclosing_sync] records the lock the op sits under so the
   reduction can preserve the critical-section structure. *)
type vop = {
  vloc : Wd_ir.Loc.t;
  vdesc : string; (* "disk_write(data)" or "sync(node_lock)" *)
  vkey : string; (* dedup key: "kind:target:operand-prefix" *)
  vnode : stmt_node; (* the original statement *)
  enclosing_sync : string option;
}

(* Statically-known prefix of an operand, via one level of constant
   propagation through the function's Let bindings. Distinguishes e.g.
   writes to "blk/..." from writes to "meta/..." on the same disk, so the
   similar-operation dedup does not collapse genuinely different I/O
   families. *)
let rec prefix_of_expr env = function
  | Const (VStr s) -> Some s
  | Prim ("concat", e :: _) -> prefix_of_expr env e
  | Var x -> Hashtbl.find_opt env x
  | Const _ | Binop _ | Unop _ | Pair _ | Fst _ | Snd _ | Prim _ -> None

let track_binding env x e =
  match prefix_of_expr env e with
  | Some p -> Hashtbl.replace env x p
  | None -> Hashtbl.remove env x

let op_key env ~kind ~target ~args =
  let prefix =
    match args with
    | first :: _ -> Option.value (prefix_of_expr env first) ~default:""
    | [] -> ""
  in
  Fmt.str "%s:%s:%s" (op_kind_name kind) target prefix

let sync_key lock = Fmt.str "sync:%s:" lock

let rec collect_block cfg ~env ~in_annotated ~sync block acc =
  List.fold_left
    (fun acc st ->
      match st.node with
      | Let (x, e) | Assign (x, e) ->
          track_binding env x e;
          acc
      | Op { kind; target; args; bind = _ }
        when kind_vulnerable cfg kind || in_annotated ->
          if kind_vulnerable cfg kind || kind <> Log_op then
            {
              vloc = st.loc;
              vdesc = Fmt.str "%s(%s)" (op_kind_name kind) target;
              vkey = op_key env ~kind ~target ~args;
              vnode = st.node;
              enclosing_sync = sync;
            }
            :: acc
          else acc
      | Op _ -> acc
      | Sync (lock, body) ->
          let acc =
            if cfg.sync_vulnerable then
              {
                vloc = st.loc;
                vdesc = Fmt.str "sync(%s)" lock;
                vkey = sync_key lock;
                vnode = st.node;
                enclosing_sync = sync;
              }
              :: acc
            else acc
          in
          collect_block cfg ~env ~in_annotated ~sync:(Some lock) body acc
      | If (_, t, e) ->
          collect_block cfg ~env ~in_annotated ~sync e
            (collect_block cfg ~env ~in_annotated ~sync t acc)
      | While (_, b) | Foreach (_, _, b) ->
          collect_block cfg ~env ~in_annotated ~sync b acc
      | Try (b, _, h) ->
          collect_block cfg ~env ~in_annotated ~sync h
            (collect_block cfg ~env ~in_annotated ~sync b acc)
      | Call _ | Return _ | Assert _ | Compute _ | Hook _ -> acc)
    acc block

let collect_in_func cfg f =
  let in_annotated =
    List.mem f.fname cfg.annotated_funcs || List.mem Vulnerable_annot f.annots
  in
  let env = Hashtbl.create 16 in
  List.rev (collect_block cfg ~env ~in_annotated ~sync:None f.body [])

let count_in_program cfg prog =
  List.fold_left (fun n f -> n + List.length (collect_in_func cfg f)) 0 prog.funcs
