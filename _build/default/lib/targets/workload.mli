(** Generic closed-loop client workload: one task issuing an operation per
    period, collecting success and latency statistics. *)

type stats = {
  mutable issued : int;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable total_latency : int64;
  mutable max_latency : int64;
  mutable latencies : int64 list;  (** newest first *)
}

val create_stats : unit -> stats

val record :
  stats -> latency:int64 -> [< `Ok of 'a | `Err of string | `Timeout ] -> unit

val mean_latency : stats -> int64
val percentile : stats -> float -> int64
val success_ratio : stats -> float

val spawn :
  ?name:string ->
  ?on_result:([ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ] -> unit) ->
  sched:Wd_sim.Sched.t ->
  period:int64 ->
  op:(int -> [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]) ->
  stats ->
  Wd_sim.Sched.task
(** Spawn the client loop; [op] receives the request index and must block
    (it runs inside a task). [on_result] lets observers tap every outcome. *)
