(** Bounded FIFO channel between cooperative tasks. *)

type 'a t

exception Closed of string
(** Raised by {!send} on a closed channel, and by {!recv} once a closed
    channel has drained. *)

val create : ?capacity:int -> string -> 'a t
val name : 'a t -> string
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_closed : 'a t -> bool

val send : 'a t -> 'a -> unit
(** Blocks while the channel is full. *)

val try_send : 'a t -> 'a -> bool
val recv : 'a t -> 'a

val try_recv : 'a t -> 'a option
val recv_timeout : 'a t -> timeout:int64 -> 'a option

val close : 'a t -> unit
val stats : 'a t -> int * int
(** [(sent, received)] totals. *)
