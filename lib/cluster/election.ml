(* Per-node election + dispatch agent: the piece that decentralizes the
   fleet plane.

   Each node runs one of these. It owns the node's single fabric inbox and
   dispatches every message class — membership traffic to [Membership],
   evidence to the local [Fleet] engine, election traffic here, [Recover]
   commands to the node's recovery plane. It also owns the node's view of
   who leads the fleet, maintained with a bully election (lower node index
   = higher priority):

   - Everyone starts agreeing on the highest-priority node (n0).
   - A node that locally distrusts its leader (deep probes failing, or
     suspected for gossip silence) starts an election: it challenges every
     *locally healthy* higher-priority peer with [Elect]. Restricting
     challenges to healthy peers is what dethrones a gray leader — a
     limping n0 still answers gossip, but its failing probes disqualify it,
     so n1 finds no healthy superior and crowns itself.
   - A challenged peer answers [Elect_ok] ("a better candidate lives") and
     runs its own election; a challenger with no healthy superiors
     broadcasts [Coordinator] and becomes leader.
   - Deadlines guard both waits: no [Elect_ok] in time means crown self; an
     [Elect_ok] but no [Coordinator] in time means re-run the election.

   Aggregation is leader-only: each fleet tick, the agent (if leader) folds
   its own membership view into its fleet engine as self-gossip, steps the
   correlation, and turns fresh [Node_gray] verdicts into [Recover]
   commands carrying the localising report's wire bytes back to the
   indicted node.

   Failover rebuilds the leader's evidence without any shared state: gossip
   keeps every engine's accusation matrices and digest sets warm, and each
   node retains its recently shipped report wires, re-sending them when it
   adopts a new leader. *)

module Report = Wd_watchdog.Report
module Driver = Wd_watchdog.Driver

type t = {
  node : Node.t;
  fabric : Fabric.t;
  membership : Membership.t;
  fleet : Fleet.t;
  sched : Wd_sim.Sched.t;
  node_ids : string list; (* priority order: head outranks all *)
  check_period : int64;
  answer_timeout : int64; (* Elect -> Elect_ok wait *)
  coord_timeout : int64; (* Elect_ok -> Coordinator wait *)
  mutable leader : string; (* who this node believes leads *)
  mutable round : int;
  mutable electing : bool;
  mutable elect_deadline : int64 option;
  mutable coord_deadline : int64 option;
  mutable retained : (int64 * string) list; (* shipped wires, newest first *)
  mutable leader_history : (int64 * string) list; (* newest first *)
  mutable elections_started : int;
  mutable coordinator_broadcasts : int;
  mutable recover_sent : int;
}

let retain_cap = 32
let me t = Node.id t.node
let rank t id = Option.value ~default:max_int (List.find_index (( = ) id) t.node_ids)

let create ?(check_period = Wd_sim.Time.ms 500)
    ?(answer_timeout = Wd_sim.Time.sec 1) ?(coord_timeout = Wd_sim.Time.sec 2)
    ~sched ~fabric ~node ~membership ~fleet () =
  let node_ids = Node.id node :: Fabric.peers fabric (Node.id node) in
  let node_ids = List.sort compare node_ids in
  let leader = List.hd node_ids in
  {
    node;
    fabric;
    membership;
    fleet;
    sched;
    node_ids;
    check_period;
    answer_timeout;
    coord_timeout;
    leader;
    round = 0;
    electing = false;
    elect_deadline = None;
    coord_deadline = None;
    retained = [];
    leader_history = [ (0L, leader) ];
    elections_started = 0;
    coordinator_broadcasts = 0;
    recover_sent = 0;
  }

(* a peer is a credible leader candidate only if this node's own evidence
   says it is healthy: answering deep probes and not gossip-silent *)
let locally_healthy t peer =
  (not (Membership.probe_failing t.membership peer))
  && not (List.mem peer (Membership.suspects t.membership))

let healthy_superiors t =
  List.filter
    (fun id -> rank t id < rank t (me t) && locally_healthy t id)
    t.node_ids

let adopt t ~leader =
  let now = Wd_sim.Sched.now t.sched in
  let changed = t.leader <> leader in
  t.leader <- leader;
  t.electing <- false;
  t.elect_deadline <- None;
  t.coord_deadline <- None;
  if changed then begin
    t.leader_history <- (now, leader) :: t.leader_history;
    (* inbox rebuild: re-ship retained report wires so the new leader's
       fleet engine recovers the evidence the old leader held privately *)
    List.iter
      (fun (_, wire) ->
        if leader = me t then
          Fleet.ingest_wire t.fleet ~from_:(me t) ~wire
        else
          Fabric.send t.fabric ~src:(me t) ~dst:leader
            (Fabric.Report_ship { from_ = me t; wire }))
      (List.rev t.retained)
  end

let become_leader t =
  t.coordinator_broadcasts <- t.coordinator_broadcasts + 1;
  let round = t.round in
  List.iter
    (fun dst ->
      Fabric.send t.fabric ~src:(me t) ~dst
        (Fabric.Coordinator { from_ = me t; round }))
    (Fabric.peers t.fabric (me t));
  adopt t ~leader:(me t)

let start_election t =
  t.round <- t.round + 1;
  t.elections_started <- t.elections_started + 1;
  t.electing <- true;
  match healthy_superiors t with
  | [] -> become_leader t
  | sup ->
      let now = Wd_sim.Sched.now t.sched in
      t.elect_deadline <- Some (Int64.add now t.answer_timeout);
      t.coord_deadline <- None;
      List.iter
        (fun dst ->
          Fabric.send t.fabric ~src:(me t) ~dst
            (Fabric.Elect { from_ = me t; round = t.round }))
        sup

(* --- inbox dispatch ----------------------------------------------------- *)

let handle_elect t ~from_ ~round =
  (* answer any lower-priority challenger, then contest the election
     ourselves — the bully invariant that the fittest node ends up crowned *)
  if rank t from_ > rank t (me t) then begin
    Fabric.send t.fabric ~src:(me t) ~dst:from_
      (Fabric.Elect_ok { from_ = me t; round });
    if t.leader = me t then
      (* already leading: remind the challenger instead of re-electing *)
      Fabric.send t.fabric ~src:(me t) ~dst:from_
        (Fabric.Coordinator { from_ = me t; round = t.round })
    else if not t.electing then start_election t
  end

let handle_elect_ok t ~round =
  if t.electing && round = t.round then begin
    (* a superior lives; stop waiting for answers, wait for its crown *)
    t.elect_deadline <- None;
    let now = Wd_sim.Sched.now t.sched in
    t.coord_deadline <- Some (Int64.add now t.coord_timeout)
  end

let handle_recover t ~func ~wire =
  let reason =
    match Report.of_wire wire with
    | Ok r ->
        Fmt.str "fleet indictment: %s %s" r.Report.checker_id
          (Report.fkind_name r.Report.fkind)
    | Error _ -> "fleet indictment"
  in
  ignore (Node.recover t.node ~func ~reason)

let dispatch t (env : Fabric.msg Wd_env.Net.envelope) =
  match env.Wd_env.Net.payload with
  | Fabric.Gossip { from_; accuse_probe; accuse_suspect; digests; _ } ->
      Membership.note_gossip t.membership ~from_;
      Fleet.note_gossip_evidence t.fleet ~from_ ~accuse_probe ~accuse_suspect
        ~digests
  | Fabric.Probe_req { from_; seq } ->
      Membership.handle_probe_req t.membership ~from_ ~seq
  | Fabric.Probe_ack { from_; seq; healthy } ->
      Membership.note_probe_ack t.membership ~from_ ~seq ~healthy
  | Fabric.Report_ship { from_; wire } ->
      (* filed even when not (yet) leader: a stale ship or an election in
         flight must not lose evidence *)
      Fleet.ingest_wire t.fleet ~from_ ~wire
  | Fabric.Elect { from_; round } -> handle_elect t ~from_ ~round
  | Fabric.Elect_ok { round; _ } -> handle_elect_ok t ~round
  | Fabric.Coordinator { from_; round } ->
      t.round <- max t.round round;
      adopt t ~leader:from_
  | Fabric.Recover { func; wire; _ } -> handle_recover t ~func ~wire

(* --- leader duties ------------------------------------------------------ *)

let act_on_verdict t (ev : Fleet.event) =
  match ev.Fleet.ev_verdict with
  | Fleet.Node_gray { node = victim; component = Some func } ->
      let wire = Option.value ev.Fleet.ev_evidence ~default:"" in
      t.recover_sent <- t.recover_sent + 1;
      if victim = me t then handle_recover t ~func ~wire
      else
        Fabric.send t.fabric ~src:(me t) ~dst:victim
          (Fabric.Recover { from_ = me t; func; wire })
  | Fleet.Node_gray { component = None; _ }
  | Fleet.Link_fault _ | Fleet.Overload ->
      ()

let fleet_tick t =
  if
    t.leader = me t && (not t.electing)
    && not
         (Fleet.quorum_accused t.fleet (me t)
            ~now:(Wd_sim.Sched.now t.sched))
    (* a quorum of peers accuses *this* node: the fleet is deposing it.
       Demote silently rather than act on verdicts computed by the very
       node they condemn — the successor reaches the same verdict from
       the same gossip, and records it as the one report of record. *)
  then begin
    (* fold this node's own membership view in as self-gossip: the leader
       is a peer like any other, its evidence enters through the same door *)
    Fleet.note_gossip_evidence t.fleet ~from_:(me t)
      ~accuse_probe:(Membership.accused_probe t.membership)
      ~accuse_suspect:(Membership.suspects t.membership)
      ~digests:(Node.recent_digests t.node);
    let newly = Fleet.step t.fleet ~now:(Wd_sim.Sched.now t.sched) in
    List.iter (act_on_verdict t) newly
  end

let election_check t =
  let now = Wd_sim.Sched.now t.sched in
  if t.electing then begin
    (match t.elect_deadline with
    | Some d when now >= d ->
        (* no healthy superior answered: crown self *)
        t.elect_deadline <- None;
        become_leader t
    | Some _ | None -> ());
    match t.coord_deadline with
    | Some d when now >= d ->
        (* a superior answered but never took over: re-run *)
        t.coord_deadline <- None;
        start_election t
    | Some _ | None -> ()
  end
  else if t.leader <> me t && not (locally_healthy t t.leader) then
    start_election t

(* --- agent tasks -------------------------------------------------------- *)

let start t =
  let id = me t in
  (* the single fabric receiver: every message class, one ordered stream *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-rx") ~daemon:true t.sched (fun () ->
         while true do
           match
             Fabric.recv_timeout t.fabric id ~timeout:(Wd_sim.Time.ms 250)
           with
           | None -> ()
           | Some env -> dispatch t env
         done));
  (* leadership watchdog *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-elect") ~daemon:true t.sched (fun () ->
         while true do
           Wd_sim.Sched.sleep t.check_period;
           election_check t
         done));
  (* leader-only correlation tick *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-fleet") ~daemon:true t.sched (fun () ->
         while true do
           Wd_sim.Sched.sleep (Fleet.tick_period t.fleet);
           fleet_tick t
         done));
  (* evidence as data: every locally-surfaced report leaves the node as
     wire bytes — even self-delivery on the leader goes through the codec *)
  Driver.on_report (Node.driver t.node) (fun r ->
      let wire = Report.to_wire r in
      t.retained <-
        List.filteri (fun i _ -> i < retain_cap)
          ((r.Report.at, wire) :: t.retained);
      if t.leader = id then Fleet.ingest_wire t.fleet ~from_:id ~wire
      else
        Fabric.send t.fabric ~src:id ~dst:t.leader
          (Fabric.Report_ship { from_ = id; wire }))

(* --- views -------------------------------------------------------------- *)

let leader t = t.leader
let leader_history t = List.rev t.leader_history (* chronological *)
let elections_started t = t.elections_started
let coordinator_broadcasts t = t.coordinator_broadcasts
let recover_sent t = t.recover_sent
let fleet t = t.fleet
