(* repro — command-line front end for the paper's experiments.

     repro list                    list experiments and failure scenarios
     repro table1 | table2 | ...   run one experiment and print its table
     repro cluster | failover      fleet plane (E17) / leader failover (E18)
     repro all                     run every experiment
     repro scenario <sid>          run one catalog scenario in detail *)

open Cmdliner

(* The shared --jobs/--seed/--engine flags live in [Wd_harness.Cli], so
   repro and bench stay in lockstep. *)
let jobs_arg = Wd_harness.Cli.jobs_arg
let seed_arg = Wd_harness.Cli.seed_arg
let engine_arg = Wd_harness.Cli.engine_arg
let apply_jobs = Wd_harness.Cli.apply_jobs
let apply_seed = Wd_harness.Cli.apply_seed
let apply_engine = Wd_harness.Cli.apply_engine

let run_experiment name jobs seed engine =
  apply_jobs jobs;
  apply_seed seed;
  apply_engine engine;
  match List.assoc_opt name (Wd_harness.Experiments.all_texts ()) with
  | Some f ->
      print_string (f ());
      0
  | None ->
      Fmt.epr "unknown experiment %s@." name;
      1

let list_cmd =
  let doc = "List experiments and failure scenarios." in
  let run () =
    print_endline "experiments:";
    List.iter
      (fun (name, _) -> Printf.printf "  repro %s\n" name)
      (Wd_harness.Experiments.all_texts ());
    print_endline "\nfailure scenarios (repro scenario <sid>):";
    List.iter
      (fun s -> Fmt.pr "  %a@." Wd_faults.Catalog.pp_scenario s)
      Wd_faults.Catalog.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmds =
  List.filter_map
    (fun (ename, _) ->
      if ename = "faultspace" || ename = "load" || ename = "frontier" then
        None (* dedicated commands below: --worlds / --requests *)
      else
        let doc = Printf.sprintf "Run experiment %s." ename in
        let term =
          Term.(
            const run_experiment $ const ename $ jobs_arg $ seed_arg
            $ engine_arg)
        in
        Some (Cmd.v (Cmd.info ename ~doc) term))
    (Wd_harness.Experiments.all_texts ())

let faultspace_cmd =
  let doc =
    "Run experiment faultspace (E20): a randomized fault-space sweep of \
     generated worlds graded against per-world oracles."
  in
  let worlds_arg =
    Arg.(
      value
      & opt int Wd_harness.Experiments.e20_default_worlds
      & info [ "worlds" ] ~docv:"N"
          ~doc:"Number of worlds in the sweep grid (default $(docv)=1000).")
  in
  let run worlds jobs seed engine =
    apply_jobs jobs;
    apply_seed seed;
    apply_engine engine;
    if worlds < 0 then begin
      Fmt.epr "--worlds must be non-negative@.";
      1
    end
    else begin
      print_string (Wd_harness.Experiments.e20_text ~worlds ());
      0
    end
  in
  Cmd.v
    (Cmd.info "faultspace" ~doc)
    Term.(const run $ worlds_arg $ jobs_arg $ seed_arg $ engine_arg)

let load_cmd =
  let doc =
    "Run experiment load (E22): open/closed-loop heavy-traffic load against \
     single nodes and a fleet, watchdog-on vs -off vs inferred-on, with \
     detection latency under load."
  in
  let requests_arg =
    Arg.(
      value
      & opt int Wd_harness.Experiments.e22_default_requests
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Request budget per deployment row of each workload (default \
             $(docv)=60000).")
  in
  let run requests jobs seed engine =
    apply_jobs jobs;
    apply_seed seed;
    apply_engine engine;
    if requests <= 0 then begin
      Fmt.epr "--requests must be positive@.";
      1
    end
    else begin
      print_string (Wd_harness.Experiments.e22_text ~requests ());
      0
    end
  in
  Cmd.v
    (Cmd.info "load" ~doc)
    Term.(const run $ requests_arg $ jobs_arg $ seed_arg $ engine_arg)

let frontier_cmd =
  let doc =
    "Run experiment frontier (E23): sweep checker-scheduling modes (fixed \
     vs adaptive) across the full fault catalog and the E22 load plane, \
     emitting an overhead-vs-detection-latency frontier table."
  in
  let requests_arg =
    Arg.(
      value
      & opt int Wd_harness.Experiments.e22_default_requests
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Request budget per load-plane run of each scheduling mode \
             (default $(docv)=60000).")
  in
  let run requests jobs seed engine =
    apply_jobs jobs;
    apply_seed seed;
    apply_engine engine;
    if requests <= 0 then begin
      Fmt.epr "--requests must be positive@.";
      1
    end
    else begin
      print_string (Wd_harness.Experiments.e23_text ~requests ());
      0
    end
  in
  Cmd.v
    (Cmd.info "frontier" ~doc)
    Term.(const run $ requests_arg $ jobs_arg $ seed_arg $ engine_arg)

let all_cmd =
  let doc = "Run every experiment." in
  let run jobs seed engine =
    apply_jobs jobs;
    apply_seed seed;
    apply_engine engine;
    List.fold_left
      (fun acc (name, _) ->
        Printf.printf "\n================ repro %s ================\n\n" name;
        max acc (run_experiment name None None None))
      0
      (Wd_harness.Experiments.all_texts ())
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ jobs_arg $ seed_arg $ engine_arg)

let checkers_cmd =
  let doc =
    "Generate and print the watchdog checkers for a target system \
     (kvs | zkmini | dfsmini | cstore | mqbroker)."
  in
  let system =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM")
  in
  let run system =
    let prog =
      match system with
      | "kvs" -> Some (Wd_targets.Kvs.program ())
      | "zkmini" -> Some (Wd_targets.Zkmini.program ())
      | "dfsmini" -> Some (Wd_targets.Dfsmini.program ())
      | "cstore" -> Some (Wd_targets.Cstore.program ())
      | "mqbroker" -> Some (Wd_targets.Mqbroker.program ())
      | _ -> None
    in
    match prog with
    | None ->
        Fmt.epr "unknown system %s@." system;
        1
    | Some prog ->
        let g = Wd_autowatchdog.Generate.analyze prog in
        Fmt.pr "%a@." Wd_autowatchdog.Generate.pp_summary g;
        List.iter
          (fun u ->
            print_endline (Wd_autowatchdog.Generate.render_checker_source u))
          g.Wd_autowatchdog.Generate.units;
        0
  in
  Cmd.v (Cmd.info "checkers" ~doc) Term.(const run $ system)

let scenario_cmd =
  let doc = "Run one failure scenario and print per-detector outcomes." in
  let sid =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO")
  in
  let trace_flag =
    Arg.(value & flag & info [ "trace"; "t" ] ~doc:"Dump the scheduler-event timeline around the failure.")
  in
  let run sid with_trace =
    match Wd_faults.Catalog.find sid with
    | exception Invalid_argument m ->
        Fmt.epr "%s@." m;
        1
    | scenario when with_trace ->
        (* raw run with tracing enabled; dump the recent timeline *)
        let cfg = Wd_harness.Campaign.default_config in
        let sched = Wd_sim.Sched.create ~seed:cfg.Wd_harness.Campaign.seed () in
        let tr = Wd_sim.Trace.create ~capacity:16384 () in
        Wd_sim.Sched.set_trace sched tr;
        let reg = Wd_env.Faultreg.create () in
        let booted =
          Wd_harness.Systems.boot ~sched ~reg
            ~mode:cfg.Wd_harness.Campaign.mode
            ?special:scenario.Wd_faults.Catalog.special
            scenario.Wd_faults.Catalog.system
        in
        ignore (Wd_sim.Sched.run ~until:cfg.Wd_harness.Campaign.warmup sched);
        let inject_at = Wd_sim.Sched.now sched in
        ignore (Wd_faults.Catalog.inject reg scenario ~at:inject_at);
        (* stop shortly after the first report to keep the timeline tight *)
        let stop_at = ref Int64.max_int in
        Wd_watchdog.Driver.on_report booted.Wd_harness.Systems.b_driver
          (fun _ ->
            if !stop_at = Int64.max_int then
              stop_at := Int64.add (Wd_sim.Sched.now sched) (Wd_sim.Time.ms 10));
        let rec advance () =
          let target =
            min !stop_at (Int64.add (Wd_sim.Sched.now sched) (Wd_sim.Time.sec 1))
          in
          ignore (Wd_sim.Sched.run ~until:target sched);
          if
            Wd_sim.Sched.now sched < !stop_at
            && Wd_sim.Sched.now sched < Int64.add inject_at (Wd_sim.Time.sec 45)
          then advance ()
        in
        advance ();
        Fmt.pr "%a@.@." Wd_faults.Catalog.pp_scenario scenario;
        List.iter
          (fun r -> Fmt.pr "REPORT %a@." Wd_watchdog.Report.pp r)
          (Wd_watchdog.Driver.reports booted.Wd_harness.Systems.b_driver);
        Fmt.pr "@.scheduler timeline (last 40 events):@.";
        Wd_sim.Trace.dump ~n:40 Fmt.stdout (Option.get (Wd_sim.Sched.trace sched));
        0
    | scenario ->
        let r = Wd_harness.Campaign.run_scenario sid in
        Fmt.pr "%a@.@." Wd_faults.Catalog.pp_scenario scenario;
        List.iter
          (fun (name, (o : Wd_harness.Campaign.outcome)) ->
            Fmt.pr "  %-10s detected=%-5b latency=%-10s loc=%a@." name
              o.Wd_harness.Campaign.o_detected
              (match o.Wd_harness.Campaign.o_latency with
              | None -> "-"
              | Some l -> Wd_sim.Time.to_string l)
              Fmt.(option ~none:(any "-") Wd_ir.Loc.pp)
              o.Wd_harness.Campaign.o_loc)
          r.Wd_harness.Campaign.r_outcomes;
        Fmt.pr "  workload: %d ops, %.1f%% ok; %d checkers; %d pre-injection reports@."
          r.Wd_harness.Campaign.r_workload_issued
          (100. *. r.Wd_harness.Campaign.r_workload_ok_ratio)
          r.Wd_harness.Campaign.r_checker_count
          r.Wd_harness.Campaign.r_pre_inject_reports;
        0
  in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run $ sid $ trace_flag)

let () =
  let doc =
    "Reproduction of 'Comprehensive and Efficient Runtime Checking in System \
     Software through Watchdogs' (HotOS '19)"
  in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          (list_cmd :: all_cmd :: scenario_cmd :: checkers_cmd
           :: faultspace_cmd :: load_cmd :: frontier_cmd :: experiment_cmds)))
