examples/quickstart.mli:
