(** Typed, [Result]-returning loader for the process environment knobs
    ([WD_JOBS], [WD_MINOR_HEAP], [WD_ENGINE]). The single parse site: no
    other module calls [Sys.getenv] for these. Dependency-free so both the
    domain pool and the interpreter can consume it;
    [Wd_harness.Cli.config] re-exposes the same loader at the CLI layer. *)

type engine = [ `Compiled | `Treewalk ]
(** Structurally identical to [Wd_ir.Interp.engine]; declared here so this
    library needs no dependencies. *)

type t = {
  jobs : int option;  (** [WD_JOBS]: domain-pool width; must be positive *)
  minor_heap_words : int option;
      (** [WD_MINOR_HEAP]: per-domain minor heap in words; values below the
          runtime's 16k-word floor are ignored ([None]) *)
  engine : engine option;  (** [WD_ENGINE]: [compiled] or [treewalk] *)
}

val empty : t

val engine_of_string : string -> engine option
(** Shared engine-name parser ([compiled] / [treewalk], case-insensitive,
    a few historical spellings). *)

val load : unit -> (t, string) result
(** Parse the environment. [Error] names the offending variable and value;
    unset or empty variables are [None], never errors. *)

val get : unit -> t
(** Memoised {!load}; raises [Failure] with the {!load} error message on a
    malformed environment (fail-fast at first use, preserving the historic
    [WD_ENGINE] behaviour for all three knobs). *)
