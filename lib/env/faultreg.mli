(** Fault-injection registry shared by all simulated environment subsystems.

    Operations consult the registry with a *site* string before executing;
    matching active faults add latency, hang the caller, raise errors,
    corrupt payloads or drop messages. Activations are logged as the ground
    truth for detection-latency metrics. *)

type behaviour =
  | Delay of int64
  | Slow_factor of float
  | Hang
  | Error of string
  | Corrupt
  | Drop

type fault = {
  id : string;
  site_pattern : string;  (** exact, or prefix ending in ['*'] *)
  behaviour : behaviour;
  start_at : int64;
  stop_at : int64;
  once : bool;
}

type trigger = { at : int64; fault_id : string; site : string }

type t

val create : unit -> t
val inject : t -> fault -> unit
val remove : t -> id:string -> unit
val clear : t -> unit
val faults : t -> fault list
val triggers : t -> trigger list

val site_matches : pattern:string -> site:string -> bool

val armed : t -> bool
(** [true] iff any fault is currently injected. When [false], [consult]
    cannot match or record anything — hot paths use this to skip building
    the site string altogether. *)

val consult : t -> site:string -> now:int64 -> (string * behaviour) list
(** Active faults matching [site], as [(fault id, behaviour)]. Logs a trigger
    for each and retires [once] faults. *)

val first_trigger : t -> id:string -> int64 option
(** When the fault first fired, if it has. *)

val apply_common :
  (string * behaviour) list ->
  now:int64 ->
  stop_of:(string -> int64) ->
  ((bool * bool), string) result
(** Execute delay/hang behaviours (blocking the calling task) and fold the
    rest: [Ok (corrupt, drop)] or [Error msg]. *)

val slow_factor : (string * behaviour) list -> float
val stop_of : t -> string -> int64

val pp_behaviour : Format.formatter -> behaviour -> unit
val pp_fault : Format.formatter -> fault -> unit
