(* End-to-end tests for the fleet aggregation plane (wd_cluster): each case
   boots a full 5-node cstore fleet in one deterministic scheduler world,
   injects one cluster-scoped scenario, and checks the fleet plane's
   verdicts. cstore cells are used throughout — they are an order of
   magnitude cheaper than zkmini, and the correlation rules under test are
   system-agnostic. *)

module Sim = Wd_cluster.Sim
module Fleet = Wd_cluster.Fleet
module Topology = Wd_cluster.Topology
module Membership = Wd_cluster.Membership
module Election = Wd_cluster.Election
module Catalog = Wd_faults.Cluster_catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cstore_cfg =
  {
    Sim.default_config with
    Sim.topology = Topology.uniform ~nodes:5 Topology.Cstore;
  }

let run csid = Sim.run ~cfg:cstore_cfg csid

let test_limplock_indicts_victim () =
  let r = run "fleet-limplock" in
  Alcotest.(check (list string)) "victim indicted" [ "n2" ] r.Sim.cr_indicted_nodes;
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  check "component named" true (r.Sim.cr_component <> None);
  let truth =
    Catalog.truth_components (Catalog.find "fleet-limplock") ~system:"cstore"
  in
  (match r.Sim.cr_component with
  | Some c -> check "component in truth set" true (List.mem c truth)
  | None -> ());
  check "detection latency recorded" true (r.Sim.cr_first_latency <> None)

let test_asym_partition_indicts_links () =
  let r = run "fleet-asym-partition" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "cut pair indicted" true
    (List.mem ("n1", "n3") r.Sim.cr_indicted_links);
  check "graded as expected" true r.Sim.cr_as_expected

let test_overload_stays_quiet () =
  let r = run "fleet-overload" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "overload recognised" true r.Sim.cr_overloaded;
  check "graded as expected" true r.Sim.cr_as_expected

let test_fault_free_stays_quiet () =
  let r = run "fleet-fault-free" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "no overload recorded" false r.Sim.cr_overloaded;
  check "graded as expected" true r.Sim.cr_as_expected;
  check "membership stayed busy" true (r.Sim.cr_membership_events = 0);
  check "checkers attached fleet-wide" true (r.Sim.cr_checker_count > 0);
  check "workload healthy" true (r.Sim.cr_workload_ok > 0.9)

(* A cell is a pure function of (seed, system, scenario): two runs of the
   same cell must produce structurally identical results — the property the
   campaign engine relies on to fan cells over domains. *)
let test_cell_determinism () =
  let a = run "fleet-limplock" in
  let b = run "fleet-limplock" in
  check "identical results" true (a = b);
  let c = Sim.run ~cfg:{ cstore_cfg with Sim.seed = 7 } "fleet-limplock" in
  check_int "seed recorded" 7 c.Sim.cr_seed

(* --- decentralized plane: flap tolerance, oracle, failover ------------- *)

(* A transient link flap (1.2s drop window, under both the suspicion
   timeout and the probe-failure threshold's reach) must ride out without
   suspicion, indictment, or leadership churn. *)
let test_link_flap_stays_quiet () =
  let r = run "fleet-link-flap" in
  check "no node indicted" true (r.Sim.cr_indicted_nodes = []);
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  check "no suspicion across a single flap" true (r.Sim.cr_suspected_events = 0);
  check "leadership undisturbed" true
    (r.Sim.cr_final_leaders = [ "n0" ] && r.Sim.cr_elections = 0)

(* --- correlated scenarios: verdict priority under compound faults ------ *)

(* A limplocked node plus an unrelated partial partition, injected
   together: the node verdict must win the rule-priority race, and the cut
   must neither shift blame onto a healthy node nor surface as a second
   (link) indictment — rule 3 is suppressed while the victim has no
   healthy link. *)
let test_correlated_limplock_partition () =
  let r = run "fleet-limplock-partition" in
  Alcotest.(check (list string))
    "limping node indicted" [ "n2" ] r.Sim.cr_indicted_nodes;
  check "no link indicted despite the cut" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  check "component named" true (r.Sim.cr_component <> None);
  check "component from the victim's system" true r.Sim.cr_component_ok

(* A gray node whose report path to the leader also limps (200x slower,
   nothing dropped): shipped evidence arrives late but arrives, and the
   verdict still pins the node, not the fabric. *)
let test_correlated_slow_link_gray () =
  let r = run "fleet-slow-link-gray" in
  Alcotest.(check (list string))
    "limping node indicted" [ "n1" ] r.Sim.cr_indicted_nodes;
  check "slow link not indicted" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  check "recovery still commanded" true
    (r.Sim.cr_first_recovery_latency <> None)

(* --- typed topology configs -------------------------------------------- *)

(* Bad configs die when built, not mid-boot: an unknown system name fails
   in the registry, and a scenario whose victim index falls outside the
   topology is rejected before any scheduler exists. *)
let test_config_time_validation () =
  check "unknown system rejected" true
    (Result.is_error (Topology.system_of_string "etcd"));
  check "known systems resolve" true
    (Topology.system_of_string "zkmini" = Ok Topology.Zkmini
    && Topology.system_of_string "cstore" = Ok Topology.Cstore);
  (match
     Sim.run
       ~cfg:
         {
           cstore_cfg with
           Sim.topology = Topology.uniform ~nodes:3 Topology.Cstore;
         }
       "fleet-limplock-partition"
   with
  | _ -> Alcotest.fail "undersized topology accepted"
  | exception Invalid_argument _ -> ());
  match Topology.with_link (Topology.uniform ~nodes:3 Topology.Cstore)
          ~src:0 ~dst:5 ()
  with
  | _ -> Alcotest.fail "out-of-range link accepted"
  | exception Invalid_argument _ -> ()

(* --- 9-node fleets: membership convergence at larger scale ------------- *)

(* A fault-free 9-node fleet must converge: every agent sees every peer
   answering deep probes, nobody is suspected or accused, and leadership
   stays with n0 with no election ever started. *)
let test_membership_convergence_9node () =
  let topology = Topology.uniform ~nodes:9 Topology.Cstore in
  let w = Sim.boot ~seed:43 ~topology () in
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 8) (Sim.world_sched w));
  let ids = List.init 9 Wd_cluster.Fabric.node_name in
  List.iter
    (fun a ->
      let me = Membership.me a in
      check (me ^ " suspects nobody") true (Membership.suspects a = []);
      check (me ^ " accuses nobody") true (Membership.accused_probe a = []);
      List.iter
        (fun peer ->
          if peer <> me then
            check
              (Fmt.str "%s saw %s answer deep probes" me peer)
              true
              (Membership.probe_ok_count a peer > 0))
        ids)
    (Sim.world_agents w);
  List.iter
    (fun e ->
      check (Election.me e ^ " follows n0") true (Election.leader e = "n0");
      check_int (Election.me e ^ " started no election") 0
        (Election.elections_started e))
    (Sim.world_elections w)

(* The refactor's acceptance oracle: the decentralized plane — reports as
   wire-encoded fabric messages into the elected leader's engine, never a
   cross-node Driver.on_report subscription — reproduces the pre-refactor
   verdict grid exactly, and identically at any --jobs width. The engine
   dimension is covered by CI running this binary under WD_ENGINE=treewalk
   as well as the default. *)
let test_e17_oracle_at_jobs_1_and_n () =
  let module E = Wd_harness.Experiments in
  let module M = Wd_harness.Metrics in
  E.set_jobs 1;
  let r1 = E.e17_run () in
  E.set_jobs (Wd_parallel.Pool.default_jobs ());
  let rn = E.e17_run () in
  check "jobs=1 and jobs=N grids identical" true (r1 = rn);
  (* pre-refactor oracle over the original four-scenario subset *)
  let orig = List.map (fun s -> s.Catalog.csid) Catalog.all in
  let sub = List.filter (fun r -> List.mem r.Sim.cr_csid orig) r1 in
  let s = M.fleet_summary sub in
  check_int "faulty cells" 8 s.M.fs_faulty;
  check_int "8/8 indict the right target" 8 s.M.fs_right;
  check_int "node cells" 4 s.M.fs_node_cells;
  check_int "4/4 name a true component" 4 s.M.fs_component_right;
  check_int "quiet cells" 8 s.M.fs_quiet;
  check_int "0/8 false indictments" 0 s.M.fs_false_indict;
  (* every node indictment now carries recoverable evidence: MTTR present *)
  check "fleet MTTR measured" true (s.M.fs_mttr.M.ls_count = 4);
  (* the evidence behind those verdicts decodes and attributes to the
     mimic family — and the quiet cells contribute no family evidence *)
  Alcotest.(check (list string))
    "family order" M.checker_families
    (List.map (fun f -> f.M.fam_family) s.M.fs_families);
  let fam name =
    List.find (fun f -> f.M.fam_family = name) s.M.fs_families
  in
  check "mimic evidence backs the node verdicts" true
    ((fam "mimic").M.fam_indictments >= 4);
  check "no family fires on quiet cells" true
    (List.for_all (fun f -> f.M.fam_false_positives = 0) s.M.fs_families);
  (* the flap cells ride along in the extended grid and stay quiet *)
  let flap =
    List.filter (fun r -> r.Sim.cr_csid = "fleet-link-flap") r1
  in
  check_int "flap cells present" 4 (List.length flap);
  check "flap cells all quiet" true
    (List.for_all (fun r -> r.Sim.cr_as_expected) flap)

let e18_fault =
  {
    Wd_env.Faultreg.id = "repro-limplock";
    site_pattern = "disk:*";
    behaviour = Wd_env.Faultreg.Slow_factor 2000.;
    start_at = 0L;
    stop_at = Wd_sim.Time.never;
    once = false;
  }

(* E18: the leader itself goes gray. A successor must win the election,
   indict the old leader from re-shipped wire evidence, command its
   recovery, and the shipped mimic context must replay to the same
   violation class on a node that never saw the failure. *)
let test_leader_failover_recovery_repro () =
  let r = run "fleet-leader-limplock" in
  Alcotest.(check (list string))
    "old leader indicted" [ "n0" ] r.Sim.cr_indicted_nodes;
  check "no link indicted" true (r.Sim.cr_indicted_links = []);
  check "graded as expected" true r.Sim.cr_as_expected;
  (* the verdict was recorded by a successor engine, never by n0 itself *)
  (match r.Sim.cr_events with
  | (owner, _) :: _ -> check "successor recorded the verdict" true (owner <> "n0")
  | [] -> Alcotest.fail "no verdict recorded");
  (* failover happened and converged on one non-n0 leader, boundedly *)
  check "single successor leader" true
    (match r.Sim.cr_final_leaders with [ l ] -> l <> "n0" | _ -> false);
  check "elections ran" true (r.Sim.cr_elections > 0);
  (match r.Sim.cr_converged_at with
  | Some at ->
      let lat = Int64.sub at r.Sim.cr_inject_at in
      check "converged after injection" true (lat > 0L);
      check "converged within 8s" true (lat <= Wd_sim.Time.sec 8)
  | None -> Alcotest.fail "leadership did not converge");
  (match r.Sim.cr_first_latency with
  | Some l -> check "indicted within 8s" true (l <= Wd_sim.Time.sec 8)
  | None -> Alcotest.fail "no detection latency");
  (* the Recover command microrebooted a component on the victim *)
  check "victim microrebooted" true
    (List.exists (fun (n, _) -> n = "n0") r.Sim.cr_recoveries);
  check "recovery latency measured" true
    (r.Sim.cr_first_recovery_latency <> None);
  (* cross-node repro: evidence bytes -> same violation class *)
  (match r.Sim.cr_evidence_wire with
  | None -> Alcotest.fail "no evidence wire shipped"
  | Some wire -> (
      let g =
        Wd_autowatchdog.Generate.analyze_cached (Wd_targets.Cstore.program ())
      in
      let timeout = Wd_sim.Time.ms 100 in
      (match Wd_autowatchdog.Reproduce.run_wire ~fault:e18_fault ~timeout g ~wire with
      | Wd_autowatchdog.Reproduce.Reproduced k ->
          check "liveness violation reproduced" true
            (k = Wd_watchdog.Report.Hang)
      | o ->
          Alcotest.fail
            (Fmt.str "repro under fault: %a"
               Wd_autowatchdog.Reproduce.pp_outcome o));
      (* clean replay passes: the environment, not the payload, is faulty *)
      match Wd_autowatchdog.Reproduce.run_wire ~timeout g ~wire with
      | Wd_autowatchdog.Reproduce.Not_reproduced -> ()
      | o ->
          Alcotest.fail
            (Fmt.str "clean replay: %a" Wd_autowatchdog.Reproduce.pp_outcome o)));
  (* the whole story is a pure function of the seed *)
  let r2 = run "fleet-leader-limplock" in
  check "failover cell deterministic" true (r = r2)

(* E19: the heterogeneous asymmetric-fabric grid is byte-identical at any
   --jobs width, and every cell grades as expected — correlated faults pin
   the limping node on 9- and 15-node mixed fleets, and the asymmetric
   fabric alone indicts nothing. *)
let test_e19_hetero_grid () =
  let module E = Wd_harness.Experiments in
  E.set_jobs 1;
  let r1 = E.e19_run () in
  E.set_jobs (Wd_parallel.Pool.default_jobs ());
  let rn = E.e19_run () in
  check "jobs=1 and jobs=N grids identical" true (r1 = rn);
  check_int "six cells (2 topologies x 3 scenarios)" 6 (List.length r1);
  check "every cell graded as expected" true
    (List.for_all (fun r -> r.Sim.cr_as_expected) r1);
  check "both topologies mixed-system" true
    (List.for_all
       (fun r ->
         List.mem "zkmini" r.Sim.cr_node_systems
         && List.mem "cstore" r.Sim.cr_node_systems)
       r1)

let () =
  Alcotest.run "wd_cluster"
    [
      ( "fleet",
        [
          Alcotest.test_case "limplock indicts victim node and component"
            `Quick test_limplock_indicts_victim;
          Alcotest.test_case "asym partition indicts links only" `Quick
            test_asym_partition_indicts_links;
          Alcotest.test_case "overload yields no indictment" `Quick
            test_overload_stays_quiet;
          Alcotest.test_case "fault-free stays quiet" `Quick
            test_fault_free_stays_quiet;
          Alcotest.test_case "cells are deterministic" `Quick
            test_cell_determinism;
          Alcotest.test_case "link flap stays quiet" `Quick
            test_link_flap_stays_quiet;
        ] );
      ( "correlated",
        [
          Alcotest.test_case "limplock + partition pins the node" `Quick
            test_correlated_limplock_partition;
          Alcotest.test_case "slow link never masks a gray node" `Quick
            test_correlated_slow_link_gray;
        ] );
      ( "topology",
        [
          Alcotest.test_case "configs validated before boot" `Quick
            test_config_time_validation;
        ] );
      ( "membership",
        [
          Alcotest.test_case "9-node fault-free fleet converges" `Quick
            test_membership_convergence_9node;
        ] );
      ( "decentralized",
        [
          Alcotest.test_case "E17 oracle at jobs 1 and N" `Slow
            test_e17_oracle_at_jobs_1_and_n;
          Alcotest.test_case "leader failover, recovery, repro" `Quick
            test_leader_failover_recovery_repro;
          Alcotest.test_case "E19 hetero grid at jobs 1 and N" `Slow
            test_e19_hetero_grid;
        ] );
    ]
