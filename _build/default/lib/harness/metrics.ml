(* Aggregate statistics over repeated campaign runs: detection rates and
   latency distributions across seeds. The simulator is deterministic per
   seed, so a multi-seed sweep measures sensitivity to event interleavings
   (workload phase, jitter draws), not flakiness. *)

type latency_stats = {
  ls_count : int;        (* runs in which detection happened *)
  ls_total : int;        (* runs overall *)
  ls_min : int64;
  ls_median : int64;
  ls_p90 : int64;
  ls_max : int64;
}

let latency_stats_of latencies ~total =
  match List.sort compare latencies with
  | [] ->
      { ls_count = 0; ls_total = total; ls_min = 0L; ls_median = 0L;
        ls_p90 = 0L; ls_max = 0L }
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pick p = arr.(min (n - 1) (int_of_float (p *. float_of_int n))) in
      {
        ls_count = n;
        ls_total = total;
        ls_min = arr.(0);
        ls_median = pick 0.5;
        ls_p90 = pick 0.9;
        ls_max = arr.(n - 1);
      }

let pp_latency_stats ppf s =
  if s.ls_count = 0 then Fmt.pf ppf "0/%d detected" s.ls_total
  else
    Fmt.pf ppf "%d/%d detected; median %a (p90 %a, max %a)" s.ls_count
      s.ls_total Wd_sim.Time.pp s.ls_median Wd_sim.Time.pp s.ls_p90
      Wd_sim.Time.pp s.ls_max

(* Run one scenario across several seeds and aggregate one detector class. *)
let scenario_across_seeds ?(cfg = Campaign.default_config) ~seeds ~detector sid =
  let outcomes =
    List.map
      (fun seed ->
        let r = Campaign.run_scenario ~cfg:{ cfg with Campaign.seed } sid in
        List.assoc detector r.Campaign.r_outcomes)
      seeds
  in
  let latencies =
    List.filter_map (fun o -> o.Campaign.o_latency) outcomes
  in
  let exact =
    List.length
      (List.filter (fun o -> o.Campaign.o_pinpoint = Some Campaign.Exact) outcomes)
  in
  (latency_stats_of latencies ~total:(List.length seeds), exact)
