(* Closure compiler: lowers each IR function, once, into a tree of OCaml
   closures. See compile.mli for the lowering strategy and the parity
   contract with the tree-walking reference engine in [Interp].

   Execution is direct-threaded: every statement closure receives its
   continuation at compile time and tail-calls it, so a basic block runs as
   a chain of tail calls with no per-statement dispatch loop, no block
   arrays and no intermediate closure layers. Constructs that open a
   dynamic extent (Try's handler scope, Sync's lock hold, loop bodies)
   compile their interior against the [halt] terminator and call their own
   continuation outside that extent, which is what keeps exception scoping
   identical to the tree-walker.

   CPU charging is inlined into every statement closure through the
   concrete {!ctx} record rather than reached through a per-statement
   indirect call; ops, sync protocols and hooks still funnel through the
   ['i rt] record so one compiled program serves Main and Checker instances
   alike and the effectful semantics live in exactly one place. *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
exception Return_exn of value

(* --- the compile epoch ---

   Bumped by [Interp.clear_compile_cache]. Domain-local program caches and
   the call-site inline caches below both validate against it: a bump
   makes every cached compiled form stale and every call site re-read its
   callee's compiled fields on next execution. *)

let epoch = Atomic.make 0
let current_epoch () = Atomic.get epoch
let bump_epoch () = Atomic.incr epoch

(* --- execution context: CPU accounting + depth budget ---

   One per interpreter instance, threaded through every compiled closure so
   statement charging is straight-line field arithmetic (immediate ints)
   instead of an indirect call into the interpreter. The tree-walker
   updates the same record through {!charge_stmt}/{!charge}, which is what
   keeps [stmts_executed] and quantum-flush timing engine-identical. *)

type ctx = {
  cx_cost : int; (* virtual ns charged per statement *)
  cx_quantum : int; (* accumulated cost is flushed to the clock at this *)
  mutable cx_acc : int;
  mutable cx_stmts : int;
  cx_max_depth : int;
  (* Return-value slot for the compiled engine's exception-free tail
     returns; valid only between a body's normal completion and the call
     site's immediate read (same fiber, no suspension in between). *)
  mutable cx_ret : value;
}

let make_ctx ~stmt_cost ~quantum ~max_depth =
  {
    cx_cost = stmt_cost;
    cx_quantum = quantum;
    cx_acc = 0;
    cx_stmts = 0;
    cx_max_depth = max_depth;
    cx_ret = VUnit;
  }

(* Charge CPU time for an interpreted statement, flushed in quanta so that
   a busy loop advances virtual time (an infinite loop must not freeze the
   simulation, and must be observable as non-progress). *)
let[@inline] charge_stmt c =
  c.cx_stmts <- c.cx_stmts + 1;
  let acc = c.cx_acc + c.cx_cost in
  if acc >= c.cx_quantum then begin
    c.cx_acc <- 0;
    Wd_sim.Sched.sleep (Int64.of_int acc)
  end
  else c.cx_acc <- acc

let charge c cost =
  if Int64.compare cost 0x2000_0000_0000_0000L >= 0 then begin
    (* degenerate huge cost: flush directly, with int64 precision *)
    let acc = Int64.add (Int64.of_int c.cx_acc) cost in
    c.cx_acc <- 0;
    Wd_sim.Sched.sleep acc
  end
  else begin
    let acc = c.cx_acc + Int64.to_int cost in
    if acc >= c.cx_quantum then begin
      c.cx_acc <- 0;
      Wd_sim.Sched.sleep (Int64.of_int acc)
    end
    else c.cx_acc <- acc
  end

type 'i rt = {
  exec_op :
    'i ->
    Loc.t ->
    desc:string ->
    kind:op_kind ->
    target:string ->
    value list ->
    value;
  exec_sync : 'i -> Loc.t -> lock:string -> desc:string -> (unit -> unit) -> unit;
  exec_hook : 'i -> int -> (string -> value option) -> unit;
}

(* Frame slots are always "bound" to something; reads of a name the program
   never assigned must still raise the tree-walker's unbound violation. A
   single private block, tested by physical equality, marks empty slots —
   program values can never be physically equal to it. It must never leak
   into program-visible state: [Var] reads and hook captures check it. *)
let unbound : value = VStr "\x00wd:unbound\x00"

let vtrue = VBool true
let vfalse = VBool false

(* Raise helpers shared by both engines: the single source of truth for
   violation payloads, and never inlined so no error string is formatted
   before the raise decision. *)
let[@inline never] verr loc vkind msg = raise (Violation { loc; vkind; msg })

let[@inline never] err_unbound loc x =
  verr loc "unbound" (Fmt.str "unbound variable %s" x)

let[@inline never] err_cond loc v =
  verr loc "type" (Fmt.str "condition not bool: %a" pp_value v)

let[@inline never] err_logic loc v =
  verr loc "type" (Fmt.str "logic op on %a" pp_value v)

let[@inline never] err_int_op loc va vb =
  verr loc "type" (Fmt.str "int op on %a, %a" pp_value va pp_value vb)

let[@inline never] err_cmp loc va vb =
  verr loc "type" (Fmt.str "comparison on %a, %a" pp_value va pp_value vb)

let[@inline never] err_concat loc va vb =
  verr loc "type" (Fmt.str "concat on %a, %a" pp_value va pp_value vb)

let[@inline never] err_not loc v = verr loc "type" (Fmt.str "not: %a" pp_value v)
let[@inline never] err_neg loc v = verr loc "type" (Fmt.str "neg: %a" pp_value v)
let[@inline never] err_len loc v = verr loc "type" (Fmt.str "len: %a" pp_value v)
let[@inline never] err_fst loc v = verr loc "type" (Fmt.str "fst: %a" pp_value v)
let[@inline never] err_snd loc v = verr loc "type" (Fmt.str "snd: %a" pp_value v)

let[@inline never] err_foreach loc v =
  verr loc "type" (Fmt.str "foreach over %a" pp_value v)

let[@inline never] err_prim loc m = verr loc "prim" m

let[@inline never] err_depth n =
  verr Loc.dummy "depth" (Fmt.str "call depth > %d" n)

let[@inline never] err_call_arity fname =
  verr Loc.dummy "arity" (Fmt.str "call %s arity" fname)

let op_desc kind target = op_kind_name kind ^ "(" ^ target ^ ")"

(* --- slot resolution --- *)

type fenv = { slots : (string, int) Hashtbl.t; mutable next : int }

let slot fenv x =
  match Hashtbl.find_opt fenv.slots x with
  | Some i -> i
  | None ->
      let i = fenv.next in
      fenv.next <- i + 1;
      Hashtbl.add fenv.slots x i;
      i

(* --- compiled form --- *)

(* A statement / continuation: instance, context, frame, call depth. *)
type 'i kont = 'i -> ctx -> value array -> int -> unit

let halt : 'i kont = fun _ _ _ _ -> ()

(* The terminator of a *function body* (as opposed to the [halt] of inner
   extents — loop/try/sync interiors): falling off the end of a function
   yields [VUnit] through the return slot. A [Return] compiled directly
   against this terminator (i.e. in tail position of the body, including
   through tail [If] branches) writes the slot instead of raising —
   [Return_exn] is only paid by non-tail returns escaping an inner extent. *)
let kfin : 'i kont = fun _ c _ _ -> c.cx_ret <- VUnit

type 'i cfunc = {
  cf_src : func; (* identity of the first binding; pass 2 compiles only it *)
  cf_arity : int;
  mutable cf_param_slots : int array;
  mutable cf_nslots : int;
  mutable cf_body : 'i kont; (* raises Return_exn *)
  (* Frame pool: slot arrays recycled across calls. A frame is popped for
     the duration of one activation (including any suspension inside it),
     so concurrent fibers always hold distinct frames; frames abandoned to
     an escaping exception are simply not returned. Single-domain use only,
     like every other mutable compiled-form structure. *)
  mutable cf_pool : value array list;
  mutable cf_pool_len : int;
  mutable cf_pool_hits : int;
}

type 'i t = { cp_prog : program; cp_funcs : (string, 'i cfunc) Hashtbl.t }

let pool_cap = 32

let frame_get cf =
  match cf.cf_pool with
  | nf :: rest ->
      cf.cf_pool <- rest;
      cf.cf_pool_len <- cf.cf_pool_len - 1;
      cf.cf_pool_hits <- cf.cf_pool_hits + 1;
      Array.fill nf 0 (Array.length nf) unbound;
      nf
  | [] -> Array.make cf.cf_nslots unbound

let frame_put cf nf =
  if cf.cf_pool_len < pool_cap then begin
    cf.cf_pool <- nf :: cf.cf_pool;
    cf.cf_pool_len <- cf.cf_pool_len + 1
  end

(* --- call-site inline caches ---

   Each compiled call site owns one monomorphic cache of its callee's
   mutable compiled fields ([cf_body] / [cf_param_slots] are re-bound by
   pass 2 and by recompilation). The cache is validated against the global
   compile epoch on every call: one immediate comparison on the hot path,
   a re-read of the callee handle when stale. *)

type 'i site = {
  s_cf : 'i cfunc;
  mutable s_epoch : int;
  mutable s_body : 'i kont;
  mutable s_params : int array;
}

let ic_refills = Atomic.make 0
let ic_refill_count () = Atomic.get ic_refills

let refill site =
  Atomic.incr ic_refills;
  site.s_body <- site.s_cf.cf_body;
  site.s_params <- site.s_cf.cf_param_slots;
  site.s_epoch <- current_epoch ()

(* --- expression compilation (pure: closures take only the frame) --- *)

let rec cexpr fenv loc e : value array -> value =
  match e with
  | Const v -> fun _ -> v
  | Var x ->
      let i = slot fenv x in
      fun f ->
        let v = Array.unsafe_get f i in
        if v == unbound then err_unbound loc x else v
  | Binop (op, a, b) -> cbinop fenv loc op a b
  | Unop (Not, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VBool b -> VBool (not b) | v -> err_not loc v)
  | Unop (Neg, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VInt i -> VInt (-i) | v -> err_neg loc v)
  | Unop (Len, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f ->
        match c f with
        | VStr s -> VInt (String.length s)
        | VBytes b -> VInt (Bytes.length b)
        | VList l -> VInt (List.length l)
        | VMap m -> VInt (List.length m)
        | v -> err_len loc v)
  | Pair (a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        VPair (va, vb)
  | Fst e1 -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VPair (a, _) -> a | v -> err_fst loc v)
  | Snd e1 -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VPair (_, b) -> b | v -> err_snd loc v)
  | Prim (name, args) ->
      let k = clist fenv loc args in
      fun f ->
        let vs = k f in
        (try Prims.apply name vs with Prims.Prim_error m -> err_prim loc m)

(* Operand-shape specialisation: loop-dominant arithmetic and comparison
   shapes (Var/Const and Var/Var int operands) compile to flat slot reads
   with no inner closure calls. Error order matches the generic path
   exactly: left operand's unbound check, right operand's unbound check,
   then the type violation with both evaluated values. *)
and cbinop fenv loc op a b : value array -> value =
  match op with
  | And ->
      (* Short-circuit; a non-bool left side is a type violation before the
         right side is touched. The right side's raw value is the result,
         unchecked — exactly the tree-walker. *)
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cexpr fenv loc b in
      fun f -> if ca f then cb f else vfalse
  | Or ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cexpr fenv loc b in
      fun f -> if ca f then vtrue else cb f
  | Add -> (
      match (a, b) with
      | Var x, Const (VInt n) ->
          let i = slot fenv x in
          let vb = VInt n in
          fun f -> (
            match Array.unsafe_get f i with
            | VInt v -> VInt (v + n)
            | va ->
                if va == unbound then err_unbound loc x
                else err_int_op loc va vb)
      | Var x, Var y ->
          let i = slot fenv x in
          let j = slot fenv y in
          fun f ->
            let va = Array.unsafe_get f i in
            if va == unbound then err_unbound loc x;
            let vb = Array.unsafe_get f j in
            if vb == unbound then err_unbound loc y;
            (match (va, vb) with
            | VInt p, VInt q -> VInt (p + q)
            | _ -> err_int_op loc va vb)
      | Const (VInt n), Var y ->
          let j = slot fenv y in
          let va = VInt n in
          fun f -> (
            match Array.unsafe_get f j with
            | VInt v -> VInt (n + v)
            | vb ->
                if vb == unbound then err_unbound loc y
                else err_int_op loc va vb)
      | _ ->
          let ca = cexpr fenv loc a in
          let cb = cexpr fenv loc b in
          fun f -> (
            let va = ca f in
            let vb = cb f in
            match (va, vb) with
            | VInt x, VInt y -> VInt (x + y)
            | _ -> err_int_op loc va vb))
  | Sub -> (
      match (a, b) with
      | Var x, Const (VInt n) ->
          let i = slot fenv x in
          let vb = VInt n in
          fun f -> (
            match Array.unsafe_get f i with
            | VInt v -> VInt (v - n)
            | va ->
                if va == unbound then err_unbound loc x
                else err_int_op loc va vb)
      | Var x, Var y ->
          let i = slot fenv x in
          let j = slot fenv y in
          fun f ->
            let va = Array.unsafe_get f i in
            if va == unbound then err_unbound loc x;
            let vb = Array.unsafe_get f j in
            if vb == unbound then err_unbound loc y;
            (match (va, vb) with
            | VInt p, VInt q -> VInt (p - q)
            | _ -> err_int_op loc va vb)
      | _ ->
          let ca = cexpr fenv loc a in
          let cb = cexpr fenv loc b in
          fun f -> (
            let va = ca f in
            let vb = cb f in
            match (va, vb) with
            | VInt x, VInt y -> VInt (x - y)
            | _ -> err_int_op loc va vb))
  | Mul ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> VInt (x * y)
        | _ -> err_int_op loc va vb)
  | Div ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y ->
            if y = 0 then verr loc "arith" "division by zero" else VInt (x / y)
        | _ -> err_int_op loc va vb)
  | Mod ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y ->
            if y = 0 then verr loc "arith" "mod by zero" else VInt (x mod y)
        | _ -> err_int_op loc va vb)
  | Eq ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        if value_equal va vb then vtrue else vfalse
  | Ne ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        if value_equal va vb then vfalse else vtrue
  | (Lt | Le | Gt | Ge) as op ->
      let c = ccmp fenv loc op a b in
      fun f -> if c f then vtrue else vfalse
  | Concat ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VStr x, VStr y -> VStr (x ^ y)
        | _ -> err_concat loc va vb)

and ccmp fenv loc op a b : value array -> bool =
  (* [cmp_vc]/[cmp_vv] specialise the Var/Const-int and Var/Var shapes that
     dominate loop conditions; the generic closure pair remains for
     everything else (including string comparison). *)
  let generic op =
    let ca = cexpr fenv loc a in
    let cb = cexpr fenv loc b in
    match op with
    | `Lt ->
        fun f -> (
          let va = ca f in
          let vb = cb f in
          match (va, vb) with
          | VInt x, VInt y -> x < y
          | VStr x, VStr y -> String.compare x y < 0
          | _ -> err_cmp loc va vb)
    | `Le ->
        fun f -> (
          let va = ca f in
          let vb = cb f in
          match (va, vb) with
          | VInt x, VInt y -> x <= y
          | VStr x, VStr y -> String.compare x y <= 0
          | _ -> err_cmp loc va vb)
    | `Gt ->
        fun f -> (
          let va = ca f in
          let vb = cb f in
          match (va, vb) with
          | VInt x, VInt y -> x > y
          | VStr x, VStr y -> String.compare x y > 0
          | _ -> err_cmp loc va vb)
    | `Ge ->
        fun f -> (
          let va = ca f in
          let vb = cb f in
          match (va, vb) with
          | VInt x, VInt y -> x >= y
          | VStr x, VStr y -> String.compare x y >= 0
          | _ -> err_cmp loc va vb)
  in
  match (a, b) with
  | Var x, Const (VInt n) -> (
      let i = slot fenv x in
      let vb = VInt n in
      let bad va =
        if va == unbound then err_unbound loc x else err_cmp loc va vb
      in
      match op with
      | Lt -> (
          fun f ->
            match Array.unsafe_get f i with VInt v -> v < n | va -> bad va)
      | Le -> (
          fun f ->
            match Array.unsafe_get f i with VInt v -> v <= n | va -> bad va)
      | Gt -> (
          fun f ->
            match Array.unsafe_get f i with VInt v -> v > n | va -> bad va)
      | Ge -> (
          fun f ->
            match Array.unsafe_get f i with VInt v -> v >= n | va -> bad va)
      | _ -> assert false)
  | Var x, Var y -> (
      let i = slot fenv x in
      let j = slot fenv y in
      let pair f =
        let va = Array.unsafe_get f i in
        if va == unbound then err_unbound loc x;
        let vb = Array.unsafe_get f j in
        if vb == unbound then err_unbound loc y;
        (va, vb)
      in
      match op with
      | Lt -> (
          fun f ->
            match pair f with
            | VInt p, VInt q -> p < q
            | VStr p, VStr q -> String.compare p q < 0
            | va, vb -> err_cmp loc va vb)
      | Le -> (
          fun f ->
            match pair f with
            | VInt p, VInt q -> p <= q
            | VStr p, VStr q -> String.compare p q <= 0
            | va, vb -> err_cmp loc va vb)
      | Gt -> (
          fun f ->
            match pair f with
            | VInt p, VInt q -> p > q
            | VStr p, VStr q -> String.compare p q > 0
            | va, vb -> err_cmp loc va vb)
      | Ge -> (
          fun f ->
            match pair f with
            | VInt p, VInt q -> p >= q
            | VStr p, VStr q -> String.compare p q >= 0
            | va, vb -> err_cmp loc va vb)
      | _ -> assert false)
  | _ -> (
      match op with
      | Lt -> generic `Lt
      | Le -> generic `Le
      | Gt -> generic `Gt
      | Ge -> generic `Ge
      | Add | Sub | Mul | Div | Mod | Eq | Ne | And | Or | Concat ->
          assert false)

(* Compile an expression used as a condition, producing a bare [bool].
   [bad] is the violation to raise when the expression's *value* turns out
   non-bool; it differs by context ("condition not bool" under
   If/While/Assert, "logic op" under And/Or), matching the tree-walker's
   [truthy]-vs-[eval_binop] split. Comparison/equality shapes skip the
   check entirely — they cannot produce non-bools. *)
and cbool fenv loc (bad : value -> bool) e : value array -> bool =
  match e with
  | Const (VBool true) -> fun _ -> true
  | Const (VBool false) -> fun _ -> false
  | Binop (Eq, a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        value_equal va vb
  | Binop (Ne, a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        not (value_equal va vb)
  | Binop (((Lt | Le | Gt | Ge) as op), a, b) -> ccmp fenv loc op a b
  | Binop (And, a, b) ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cbool fenv loc bad b in
      fun f -> if ca f then cb f else false
  | Binop (Or, a, b) ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cbool fenv loc bad b in
      fun f -> if ca f then true else cb f
  | Unop (Not, e1) ->
      let c = cbool fenv loc (fun v -> err_not loc v) e1 in
      fun f -> not (c f)
  | e -> (
      let c = cexpr fenv loc e in
      fun f -> match c f with VBool b -> b | v -> bad v)

(* Flattened left-to-right argument evaluation: no [List.map] closure per
   execution for the common small arities. *)
and clist fenv loc args : value array -> value list =
  match List.map (cexpr fenv loc) args with
  | [] -> fun _ -> []
  | [ a ] -> fun f -> [ a f ]
  | [ a; b ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        [ va; vb ]
  | [ a; b; c ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        let vc = c f in
        [ va; vb; vc ]
  | [ a; b; c; d ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        let vc = c f in
        let vd = d f in
        [ va; vb; vc; vd ]
  | cs -> fun f -> List.map (fun c -> c f) cs

(* --- statement and program compilation --- *)

let compile ~rt prog =
  let funcs = Hashtbl.create (2 * List.length prog.funcs) in
  (* Pass 1: one handle per name (first binding wins, like [find_func]), so
     call sites — including forward and mutual references — resolve to the
     handle now and read the body through it at run time. *)
  List.iter
    (fun f ->
      if not (Hashtbl.mem funcs f.fname) then
        Hashtbl.add funcs f.fname
          {
            cf_src = f;
            cf_arity = List.length f.params;
            cf_param_slots = [||];
            cf_nslots = 0;
            cf_body = (fun _ _ _ _ -> assert false);
            cf_pool = [];
            cf_pool_len = 0;
            cf_pool_hits = 0;
          })
    prog.funcs;
  (* [cstmt fenv st k] compiles one statement against its continuation:
     the returned closure does the statement's work, then tail-calls [k].
     [cblock] folds a block into one such chain. *)
  let rec cstmt fenv (st : stmt) k =
    let loc = st.loc in
    match st.node with
    | Let (x, e) | Assign (x, e) ->
        let i = slot fenv x in
        let ce = cexpr fenv loc e in
        fun t c f d ->
          charge_stmt c;
          Array.unsafe_set f i (ce f);
          k t c f d
    | Op { kind; target; args; bind } -> (
        let ka = clist fenv loc args in
        let desc = op_desc kind target in
        match bind with
        | None ->
            fun t c f d ->
              charge_stmt c;
              let vs = ka f in
              ignore (rt.exec_op t loc ~desc ~kind ~target vs : value);
              k t c f d
        | Some x ->
            let i = slot fenv x in
            fun t c f d ->
              charge_stmt c;
              let vs = ka f in
              Array.unsafe_set f i (rt.exec_op t loc ~desc ~kind ~target vs);
              k t c f d)
    | Call { func; args; bind } -> ccall fenv loc func args bind k
    | If (cnd, th, el) ->
        let cc = cbool fenv loc (fun v -> err_cond loc v) cnd in
        let cth = cblock fenv th k in
        let cel = cblock fenv el k in
        fun t c f d ->
          charge_stmt c;
          if cc f then cth t c f d else cel t c f d
    | While (cnd, body) ->
        (* Charged once per statement entry, not per iteration — as in the
           tree-walker. The body runs to [halt] each iteration so a [Try]
           inside it cannot capture the loop's continuation. *)
        let cc = cbool fenv loc (fun v -> err_cond loc v) cnd in
        let cb = cblock fenv body halt in
        fun t c f d ->
          charge_stmt c;
          while cc f do
            cb t c f d
          done;
          k t c f d
    | Foreach (x, e, body) ->
        let ce = cexpr fenv loc e in
        let i = slot fenv x in
        let cb = cblock fenv body halt in
        fun t c f d ->
          charge_stmt c;
          (match ce f with
          | VList items ->
              List.iter
                (fun item ->
                  Array.unsafe_set f i item;
                  cb t c f d)
                items
          | v -> err_foreach loc v);
          k t c f d
    | Sync (lockname, body) ->
        (* The interior runs to [halt] inside the lock's dynamic extent;
           the continuation runs after release. *)
        let cb = cblock fenv body halt in
        let desc = "lock(" ^ lockname ^ ")" in
        fun t c f d ->
          charge_stmt c;
          rt.exec_sync t loc ~lock:lockname ~desc (fun () -> cb t c f d);
          k t c f d
    | Try (body, exn, handler) ->
        (* Interior and handler both run to [halt]; the continuation runs
           outside the catch, so a failure in a *later* statement can never
           be routed to this handler. *)
        let cb = cblock fenv body halt in
        let i = slot fenv exn in
        let ch = cblock fenv handler halt in
        fun t c f d ->
          charge_stmt c;
          (try cb t c f d with
          | Wd_env.Disk.Io_error m
          | Wd_env.Net.Net_error m
          | Wd_env.Memory.Out_of_memory m ->
              Array.unsafe_set f i (VStr m);
              ch t c f d
          | Wd_sim.Channel.Closed m ->
              Array.unsafe_set f i (VStr ("channel closed: " ^ m));
              ch t c f d);
          k t c f d
    | Return e ->
        let ce = cexpr fenv loc e in
        if k == kfin then
          fun _t c f _d ->
            charge_stmt c;
            c.cx_ret <- ce f
        else
          fun _t c f _d ->
            charge_stmt c;
            raise_notrace (Return_exn (ce f))
    | Assert (e, msg) ->
        let cc = cbool fenv loc (fun v -> err_cond loc v) e in
        fun t c f d ->
          charge_stmt c;
          if not (cc f) then verr loc "assert" msg;
          k t c f d
    | Compute { cost_ns; note = _ } ->
        fun t c f d ->
          charge_stmt c;
          charge c cost_ns;
          k t c f d
    | Hook id ->
        let slots = fenv.slots in
        fun t c f d ->
          charge_stmt c;
          rt.exec_hook t id (fun name ->
              match Hashtbl.find_opt slots name with
              | Some i ->
                  let v = Array.unsafe_get f i in
                  if v == unbound then None else Some v
              | None -> None);
          k t c f d
  and cblock fenv block k = List.fold_right (cstmt fenv) block k
  and ccall fenv loc func args bind k =
    let store =
      match bind with
      | None -> fun _f (_v : value) -> ()
      | Some x ->
          let i = slot fenv x in
          fun f v -> Array.unsafe_set f i v
    in
    match Hashtbl.find_opt funcs func with
    | None ->
        (* Unknown target: compile the tree-walker's behaviour — arguments
           still evaluate, the depth guard still applies, then [find_func]
           raises the canonical [Ir_error]. *)
        let ka = clist fenv loc args in
        fun _t c f d ->
          charge_stmt c;
          ignore (ka f : value list);
          if d > c.cx_max_depth then err_depth c.cx_max_depth;
          ignore (find_func prog func : func);
          assert false
    | Some cf when List.compare_length_with args cf.cf_arity <> 0 ->
        let ka = clist fenv loc args in
        fun _t c f d ->
          charge_stmt c;
          ignore (ka f : value list);
          if d > c.cx_max_depth then err_depth c.cx_max_depth;
          err_call_arity func
    | Some cf -> (
        (* The site's inline cache snapshots [cf_body]/[cf_param_slots]
           (re-bound by pass 2: the callee may not be compiled yet on a
           forward reference) and revalidates against the compile epoch. *)
        let site = { s_cf = cf; s_epoch = -1; s_body = halt; s_params = [||] } in
        match List.map (cexpr fenv loc) args with
        | [] ->
            fun t c f d ->
              charge_stmt c;
              if d > c.cx_max_depth then err_depth c.cx_max_depth;
              if site.s_epoch <> Atomic.get epoch then refill site;
              let nf = frame_get cf in
              (match site.s_body t c nf (d + 1) with
              | () ->
                  frame_put cf nf;
                  store f c.cx_ret
              | exception Return_exn v ->
                  frame_put cf nf;
                  store f v);
              k t c f d
        | [ a0 ] ->
            fun t c f d ->
              charge_stmt c;
              let v0 = a0 f in
              if d > c.cx_max_depth then err_depth c.cx_max_depth;
              if site.s_epoch <> Atomic.get epoch then refill site;
              let nf = frame_get cf in
              Array.unsafe_set nf (Array.unsafe_get site.s_params 0) v0;
              (match site.s_body t c nf (d + 1) with
              | () ->
                  frame_put cf nf;
                  store f c.cx_ret
              | exception Return_exn v ->
                  frame_put cf nf;
                  store f v);
              k t c f d
        | [ a0; a1 ] ->
            fun t c f d ->
              charge_stmt c;
              let v0 = a0 f in
              let v1 = a1 f in
              if d > c.cx_max_depth then err_depth c.cx_max_depth;
              if site.s_epoch <> Atomic.get epoch then refill site;
              let nf = frame_get cf in
              let ps = site.s_params in
              Array.unsafe_set nf (Array.unsafe_get ps 0) v0;
              Array.unsafe_set nf (Array.unsafe_get ps 1) v1;
              (match site.s_body t c nf (d + 1) with
              | () ->
                  frame_put cf nf;
                  store f c.cx_ret
              | exception Return_exn v ->
                  frame_put cf nf;
                  store f v);
              k t c f d
        | [ a0; a1; a2 ] ->
            fun t c f d ->
              charge_stmt c;
              let v0 = a0 f in
              let v1 = a1 f in
              let v2 = a2 f in
              if d > c.cx_max_depth then err_depth c.cx_max_depth;
              if site.s_epoch <> Atomic.get epoch then refill site;
              let nf = frame_get cf in
              let ps = site.s_params in
              Array.unsafe_set nf (Array.unsafe_get ps 0) v0;
              Array.unsafe_set nf (Array.unsafe_get ps 1) v1;
              Array.unsafe_set nf (Array.unsafe_get ps 2) v2;
              (match site.s_body t c nf (d + 1) with
              | () ->
                  frame_put cf nf;
                  store f c.cx_ret
              | exception Return_exn v ->
                  frame_put cf nf;
                  store f v);
              k t c f d
        | cs ->
            let carr = Array.of_list cs in
            let n = Array.length carr in
            fun t c f d ->
              charge_stmt c;
              let vs = Array.make n VUnit in
              for j = 0 to n - 1 do
                Array.unsafe_set vs j ((Array.unsafe_get carr j) f)
              done;
              if d > c.cx_max_depth then err_depth c.cx_max_depth;
              if site.s_epoch <> Atomic.get epoch then refill site;
              let nf = frame_get cf in
              let ps = site.s_params in
              for j = 0 to n - 1 do
                Array.unsafe_set nf (Array.unsafe_get ps j)
                  (Array.unsafe_get vs j)
              done;
              (match site.s_body t c nf (d + 1) with
              | () ->
                  frame_put cf nf;
                  store f c.cx_ret
              | exception Return_exn v ->
                  frame_put cf nf;
                  store f v);
              k t c f d)
  in
  (* Pass 2: compile bodies. Only the registered (first) binding of a name
     is compiled; later duplicates are unreachable, as in the tree-walker. *)
  List.iter
    (fun fdef ->
      let cf = Hashtbl.find funcs fdef.fname in
      if cf.cf_src == fdef then begin
        let fenv = { slots = Hashtbl.create 16; next = 0 } in
        let ps = Array.of_list (List.map (slot fenv) fdef.params) in
        let body = cblock fenv fdef.body kfin in
        cf.cf_param_slots <- ps;
        cf.cf_nslots <- fenv.next;
        cf.cf_body <- body
      end)
    prog.funcs;
  { cp_prog = prog; cp_funcs = funcs }

let program cp = cp.cp_prog

let nslots cp fname =
  Option.map (fun cf -> cf.cf_nslots) (Hashtbl.find_opt cp.cp_funcs fname)

let frame_pool_stats cp fname =
  Option.map
    (fun cf -> (cf.cf_pool_len, cf.cf_pool_hits))
    (Hashtbl.find_opt cp.cp_funcs fname)

(* Toplevel entry: the tree-walker's [exec_call t 0] with the depth guard
   elided (0 can never exceed the depth budget). *)
let call cp t c fname vargs =
  match Hashtbl.find_opt cp.cp_funcs fname with
  | None ->
      ignore (find_func cp.cp_prog fname : func);
      assert false
  | Some cf -> (
      if List.compare_length_with vargs cf.cf_arity <> 0 then
        err_call_arity fname;
      let nf = frame_get cf in
      let ps = cf.cf_param_slots in
      List.iteri (fun k v -> nf.(ps.(k)) <- v) vargs;
      match cf.cf_body t c nf 1 with
      | () ->
          frame_put cf nf;
          c.cx_ret
      | exception Return_exn v ->
          frame_put cf nf;
          v)
