(* Quickstart: generate a watchdog for the kvs running example (paper
   Figure 1), boot the system under simulation, serve client traffic, then
   inject a partial disk fault and watch the mimic checker report it with a
   pinpointed location and captured payload.

     dune exec examples/quickstart.exe *)

module Generate = Wd_autowatchdog.Generate
module Kvs = Wd_targets.Kvs

let () =
  (* 1. Build the target system (an IR program) and validate it. *)
  let prog = Kvs.program () in
  Wd_ir.Validate.check_exn prog;

  (* 2. AutoWatchdog: analyse, reduce, generate checkers + instrumentation. *)
  let g = Generate.analyze prog in
  Fmt.pr "%a@." Generate.pp_summary g;

  (* 3. Boot the instrumented program on the simulated environment. *)
  let sched = Wd_sim.Sched.create ~seed:2024 () in
  let reg = Wd_env.Faultreg.create () in
  let kvs =
    Kvs.boot ~sched ~reg ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
  in

  (* 4. Attach the generated watchdog to the leader node. *)
  let driver = Wd_watchdog.Driver.create sched in
  let _wctx = Generate.attach g ~sched ~main:kvs.Kvs.leader ~driver in
  Wd_watchdog.Driver.on_report driver (fun r ->
      Fmt.pr "WATCHDOG ALARM %a@." Wd_watchdog.Report.pp r);
  ignore (Kvs.start kvs);
  Wd_watchdog.Driver.start driver;

  (* 5. Client traffic. *)
  ignore
    (Wd_sim.Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 50);
           incr i;
           ignore (Kvs.set kvs ~key:(Fmt.str "user%03d" (!i mod 40))
                     ~value:(Fmt.str "profile-%d" !i))
         done));

  (* 6. Ten fault-free seconds... *)
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 10) sched);
  Fmt.pr "t=10s  fault-free: %d sets served, %d checkers quiet@."
    (Kvs.stats_sets kvs)
    (Wd_watchdog.Driver.checker_count driver);

  (* 7. ...then wedge the segment-flush region of the disk. *)
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "demo-flush-hang";
      site_pattern = "disk:kvs.disk:write:seg/*";
      behaviour = Wd_env.Faultreg.Hang;
      start_at = Wd_sim.Time.sec 10;
      stop_at = Wd_sim.Time.never;
      once = false;
    };
  Fmt.pr "t=10s  injected: segment writes now hang (clients unaffected)@.";
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 30) sched);

  let reports = Wd_watchdog.Driver.reports driver in
  Fmt.pr "@.t=30s  %d sets served; %d watchdog report(s)@."
    (Kvs.stats_sets kvs) (List.length reports);
  match reports with
  | r :: _ ->
      Fmt.pr "first detection %a after injection@." Wd_sim.Time.pp
        (Int64.sub r.Wd_watchdog.Report.at (Wd_sim.Time.sec 10));
      (* the captured context payload makes the failure reproducible *)
      (match
         List.find_opt
           (fun (x : Wd_watchdog.Report.t) -> x.Wd_watchdog.Report.payload <> [])
           reports
       with
      | Some r ->
          Fmt.pr "failure-inducing context captured by %s:@."
            r.Wd_watchdog.Report.checker_id;
          List.iter
            (fun (k, v) -> Fmt.pr "  %s = %a@." k Wd_ir.Ast.pp_value v)
            r.Wd_watchdog.Report.payload
      | None -> ())
  | [] -> Fmt.pr "no detection (unexpected)@."
