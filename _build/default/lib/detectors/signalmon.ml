(* Signal checkers (Table 2, row 2): monitor health indicators — queue
   depth, memory utilisation, scheduling delay — like the Linux watchdog
   daemon. Modest completeness, weak accuracy: a full queue may just be a
   busy system. They can narrow causes down to a resource but not to code. *)

let make ?(period = Wd_sim.Time.sec 1) ?(timeout = Wd_sim.Time.sec 5) ~id sample
    =
  Wd_watchdog.Checker.make ~kind:Wd_watchdog.Checker.Signal ~period ~timeout ~id
    (fun ~now:_ ->
      match sample () with
      | `Ok -> Wd_watchdog.Checker.Pass
      | `Fail msg ->
          let at = Wd_sim.Sched.now (Wd_sim.Sched.get ()) in
          Wd_watchdog.Checker.Fail
            (Wd_watchdog.Report.make ~at ~checker_id:id
               ~fkind:(Wd_watchdog.Report.Error_sig msg) ~op_desc:"signal" ()))

(* Queue depth indicator: alarm when the backlog exceeds [max_depth]. *)
let queue_depth ~id ~res ~queue ~max_depth =
  make ~id (fun () ->
      let q = Wd_ir.Runtime.queue res queue in
      let depth = Wd_sim.Channel.length q in
      if depth > max_depth then
        `Fail (Fmt.str "queue %s depth %d > %d" queue depth max_depth)
      else `Ok)

(* Memory utilisation indicator. *)
let mem_utilisation ~id ~mem ~max_util =
  make ~id (fun () ->
      let u = Wd_env.Memory.utilisation mem in
      if u > max_util then
        `Fail (Fmt.str "memory %s at %.0f%% > %.0f%%" (Wd_env.Memory.name mem)
                 (100. *. u) (100. *. max_util))
      else `Ok)

(* The paper's §3.3 example: a worker that sleeps briefly and measures the
   overshoot; a large overshoot means the process is suffering long pauses
   (GC pressure / severe memory leak). The sleep must run through the same
   allocator the main program uses so it shares the stall. *)
let sleep_overshoot ~id ~mem ~expected ~tolerance =
  make ~id (fun () ->
      let s = Wd_sim.Sched.get () in
      let t0 = Wd_sim.Sched.now s in
      (* allocate a token buffer: this is what experiences the GC pause *)
      (match Wd_env.Memory.alloc mem 1024 with
      | () -> Wd_env.Memory.free mem 1024
      | exception Wd_env.Memory.Out_of_memory m -> raise (Wd_env.Memory.Out_of_memory m));
      Wd_sim.Sched.sleep expected;
      let elapsed = Int64.sub (Wd_sim.Sched.now s) t0 in
      let overshoot = Int64.sub elapsed expected in
      if overshoot > tolerance then
        `Fail
          (Fmt.str "slept %a, expected %a: long pause (memory pressure?)"
             Wd_sim.Time.pp elapsed Wd_sim.Time.pp expected)
      else `Ok)
