(* Per-target adapters: boot a system with its generated watchdog, baseline
   detectors (probe / signal / heartbeat / observer) and a client workload,
   exposing the uniform surface the campaign runner drives. *)

module Generate = Wd_autowatchdog.Generate
module Checker = Wd_watchdog.Checker
module Driver = Wd_watchdog.Driver

type watchdog_mode =
  | Wd_generated       (* full AutoWatchdog: mimic checkers + context sync *)
  | Wd_no_context      (* ablation: naive mimic checkers, no state sync *)
  | Wd_none            (* no intrinsic watchdog *)

type booted = {
  b_system : string;
  b_sched : Wd_sim.Sched.t;
  b_reg : Wd_env.Faultreg.t;
  b_generated : Generate.generated option;
  b_driver : Driver.t;
  b_heartbeat : Wd_detectors.Heartbeat.t;
  b_observer : Wd_detectors.Observer.t;
  b_workload : Wd_targets.Workload.stats;
  b_tasks : Wd_sim.Sched.task list;
  b_crash : unit -> unit;
  b_mem : Wd_env.Memory.t;
  b_res : Wd_ir.Runtime.resources;
  b_client : int -> [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ];
      (* one client request by index, for load generators; wider keyspace
         than the periodic background workload and no per-call formatting
         on the request path *)
}

(* Ablation checkers for the no-context mode: mimic the reduced unit but
   with pre-supplied synthetic arguments instead of synchronised state —
   exactly the naive construction §3.1 warns about. A disk unit whose
   operand is unknown verifies a guessed path, which is spurious when the
   main program never wrote it (in-memory mode, cold start). *)
let naive_checker_of_unit ~res (u : Wd_analysis.Reduction.unit_) =
  let disk_target =
    List.find_map
      (fun key ->
        match String.split_on_char ':' key with
        | ("disk_write" | "disk_append") :: target :: _ -> Some target
        | _ -> None)
      u.Wd_analysis.Reduction.keys
  in
  match disk_target with
  | None -> None
  | Some target ->
      let guessed_path =
        (* use a constant operand if the reduction kept one, else guess *)
        let rec const_path = function
          | Wd_ir.Ast.Const (Wd_ir.Ast.VStr s) :: _ -> Some s
          | _ :: rest -> const_path rest
          | [] -> None
        in
        let op_args =
          List.concat_map
            (fun st ->
              match st.Wd_ir.Ast.node with
              | Wd_ir.Ast.Op { args; _ } -> args
              | Wd_ir.Ast.Sync (_, body) ->
                  List.concat_map
                    (fun s ->
                      match s.Wd_ir.Ast.node with
                      | Wd_ir.Ast.Op { args; _ } -> args
                      | _ -> [])
                    body
              | _ -> [])
            u.Wd_analysis.Reduction.ufunc.Wd_ir.Ast.body
        in
        match const_path op_args with Some p -> p | None -> "seg/0"
      in
      let id = "naive:" ^ u.Wd_analysis.Reduction.unit_id in
      Some
        (Checker.make ~kind:Checker.Mimic ~period:(Wd_sim.Time.sec 1)
           ~timeout:(Wd_sim.Time.sec 6) ~id (fun ~now ->
             let disk = Wd_ir.Runtime.disk res target in
             match Wd_env.Disk.read disk ~path:guessed_path with
             | _ -> Checker.Pass
             | exception Wd_env.Disk.Io_error m ->
                 Checker.Fail
                   (Wd_watchdog.Report.make ~at:now ~checker_id:id
                      ~fkind:(Wd_watchdog.Report.Error_sig m)
                      ~loc:u.Wd_analysis.Reduction.anchor_loc ())))

let attach_watchdog ?engine ~mode ~sched ~driver ~res ~main g =
  match mode with
  | Wd_none -> ()
  | Wd_generated ->
      ignore
        (Generate.attach ?engine ~progress:(Wd_sim.Time.sec 20) g ~sched ~main
           ~driver)
  | Wd_no_context ->
      List.iter
        (fun u ->
          match naive_checker_of_unit ~res u with
          | Some c -> Driver.add_checker driver c
          | None -> ())
        g.Generate.units

let expect_str ~prefix v =
  match v with
  | Wd_ir.Ast.VStr s -> String.length s >= String.length prefix
                        && String.sub s 0 (String.length prefix) = prefix
  | _ -> false

(* --- kvs --- *)

let boot_kvs ?engine ?schedule ~sched ~reg ~mode ~special () =
  let leak_bug = special = Some "leak_bug" in
  let in_memory = special = Some "in_memory" in
  let burst = special = Some "burst" in
  let deadlock_bug = special = Some "deadlock_bug" in
  let prog = Wd_targets.Kvs.program ~leak_bug ~deadlock_bug () in
  Wd_ir.Validate.check_exn prog;
  let g = Generate.analyze_cached prog in
  let run_prog =
    match mode with
    | Wd_generated -> g.Generate.red.Wd_analysis.Reduction.instrumented
    | Wd_no_context | Wd_none -> prog
  in
  (* Smaller memory pool for the leak scenario so pressure builds within the
     observation window. *)
  let mem_capacity = if leak_bug then 48 * 1024 else 64 * 1024 * 1024 in
  let t =
    Wd_targets.Kvs.boot ?engine ~in_memory ~mem_capacity ~sched ~reg
      ~prog:run_prog ()
  in
  let driver = Driver.create ?schedule sched in
  attach_watchdog ?engine ~mode ~sched ~driver ~res:t.Wd_targets.Kvs.res
    ~main:t.Wd_targets.Kvs.leader g;
  (* baseline detectors *)
  Driver.add_checker driver
    (Wd_detectors.Probe.roundtrip ~id:"probe:kvs-rw"
       ~set:(fun () -> Wd_targets.Kvs.set t ~key:"__probe" ~value:"p1")
       ~get:(fun () -> Wd_targets.Kvs.get t ~key:"__probe")
       ~expect:(expect_str ~prefix:"val:p1"));
  Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:kvs-queue"
       ~res:t.Wd_targets.Kvs.res ~queue:Wd_targets.Kvs.request_queue ~max_depth:64);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.mem_utilisation ~id:"signal:kvs-mem"
       ~mem:t.Wd_targets.Kvs.mem ~max_util:0.9);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.sleep_overshoot ~id:"signal:kvs-pause"
       ~mem:t.Wd_targets.Kvs.mem ~expected:(Wd_sim.Time.ms 50)
       ~tolerance:(Wd_sim.Time.ms 150));
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:t.Wd_targets.Kvs.net
      ~endpoint:Wd_targets.Kvs.monitor_node ~match_prefix:"hb:kvs1" ()
  in
  let observer = Wd_detectors.Observer.create sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let wl_task =
    Wd_targets.Workload.spawn ~name:"kvs-client" ~sched ~period:(Wd_sim.Time.ms 40)
      ~op:(fun i ->
        let key = Fmt.str "k%03d" (i mod 50) in
        match i mod 3 with
        | 0 -> Wd_targets.Kvs.set t ~key ~value:(Fmt.str "v%d" i)
        | 1 -> Wd_targets.Kvs.get t ~key
        | _ -> Wd_targets.Kvs.append t ~key ~value:"+")
      ~on_result:(fun r ->
        Wd_detectors.Observer.observe observer (Wd_detectors.Observer.of_result r))
      wstats
  in
  (* overload special: open-loop fire-and-forget bursts pile up the request
     queue without any fault — the paper's signal-accuracy counterexample *)
  if burst then
    ignore
      (Wd_sim.Sched.spawn ~name:"kvs-burst" ~daemon:true sched (fun () ->
           let inq = Wd_ir.Runtime.queue t.Wd_targets.Kvs.res Wd_targets.Kvs.request_queue in
           let i = ref 0 in
           while true do
             Wd_sim.Sched.sleep (Wd_sim.Time.sec 2);
             for _ = 1 to 2000 do
               incr i;
               ignore
                 (Wd_sim.Channel.try_send inq
                    (Wd_ir.Ast.VMap
                       [
                         ("op", Wd_ir.Ast.VStr "set");
                         ("key", Wd_ir.Ast.VStr (Fmt.str "burst%04d" (!i mod 500)));
                         ("value", Wd_ir.Ast.VStr (String.make 64 'x'));
                         ("reply", Wd_ir.Ast.VStr "");
                       ]))
             done
           done));
  let tasks = Wd_targets.Kvs.start t in
  Driver.start driver;
  let crash () =
    List.iter (Wd_sim.Sched.kill sched) tasks;
    Driver.stop driver
  in
  (* Bounded key space: build the 256 key strings once, not per request
     (payload strings stay per-request — they must be unique). *)
  let keys = Array.init 256 (fun k -> "lk" ^ string_of_int k) in
  let client i =
    let key = keys.(i mod 256) in
    match i mod 3 with
    | 0 -> Wd_targets.Kvs.set t ~key ~value:("lv" ^ string_of_int i)
    | 1 -> Wd_targets.Kvs.get t ~key
    | _ -> Wd_targets.Kvs.append t ~key ~value:"+"
  in
  {
    b_system = "kvs";
    b_sched = sched;
    b_reg = reg;
    b_generated = Some g;
    b_driver = driver;
    b_heartbeat = heartbeat;
    b_observer = observer;
    b_workload = wstats;
    b_tasks = (wl_task :: tasks);
    b_crash = crash;
    b_mem = t.Wd_targets.Kvs.mem;
    b_res = t.Wd_targets.Kvs.res;
    b_client = client;
  }

(* --- zkmini --- *)

let boot_zk ?engine ?schedule ~sched ~reg ~mode ~special:_ () =
  let prog = Wd_targets.Zkmini.program () in
  Wd_ir.Validate.check_exn prog;
  let g = Generate.analyze_cached prog in
  let run_prog =
    match mode with
    | Wd_generated -> g.Generate.red.Wd_analysis.Reduction.instrumented
    | Wd_no_context | Wd_none -> prog
  in
  let t = Wd_targets.Zkmini.boot ?engine ~sched ~reg ~prog:run_prog () in
  let driver = Driver.create ?schedule sched in
  attach_watchdog ?engine ~mode ~sched ~driver ~res:t.Wd_targets.Zkmini.res
    ~main:t.Wd_targets.Zkmini.leader g;
  (* the paper's two blind baselines: admin `ruok` probe + heartbeats *)
  Driver.add_checker driver
    (Wd_detectors.Probe.make ~id:"probe:zk-ruok" (fun () ->
         match Wd_targets.Zkmini.ruok t with
         | `Ok v when expect_str ~prefix:"imok" v -> `Ok
         | `Ok _ -> `Fail "ruok: unexpected reply"
         | `Timeout -> `Fail "ruok timed out"
         | `Err m -> `Fail m));
  Driver.add_checker driver
    (Wd_detectors.Probe.roundtrip ~id:"probe:zk-rw"
       ~set:(fun () -> Wd_targets.Zkmini.create t ~path:"/__probe" ~data:"p1")
       ~get:(fun () -> Wd_targets.Zkmini.get t ~path:"/__probe")
       ~expect:(expect_str ~prefix:"val:p1"));
  Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:zk-syncq"
       ~res:t.Wd_targets.Zkmini.res ~queue:"zk.sync_q" ~max_depth:64);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.mem_utilisation ~id:"signal:zk-mem"
       ~mem:t.Wd_targets.Zkmini.mem ~max_util:0.9);
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:t.Wd_targets.Zkmini.net
      ~endpoint:Wd_targets.Zkmini.monitor_node ~match_prefix:"ping:zkL" ()
  in
  let observer = Wd_detectors.Observer.create sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let wl_task =
    Wd_targets.Workload.spawn ~name:"zk-client" ~sched ~period:(Wd_sim.Time.ms 60)
      ~op:(fun i ->
        let path = Fmt.str "/node%02d" (i mod 20) in
        if i mod 3 = 0 then Wd_targets.Zkmini.get t ~path
        else Wd_targets.Zkmini.create t ~path ~data:(Fmt.str "d%d" i))
      ~on_result:(fun r ->
        Wd_detectors.Observer.observe observer (Wd_detectors.Observer.of_result r))
      wstats
  in
  let tasks = Wd_targets.Zkmini.start t in
  Driver.start driver;
  let crash () =
    List.iter (Wd_sim.Sched.kill sched) tasks;
    Driver.stop driver
  in
  let paths = Array.init 64 (fun k -> "/l" ^ string_of_int k) in
  let client i =
    let path = paths.(i mod 64) in
    if i mod 3 = 0 then Wd_targets.Zkmini.get t ~path
    else Wd_targets.Zkmini.create t ~path ~data:("ld" ^ string_of_int i)
  in
  {
    b_system = "zkmini";
    b_sched = sched;
    b_reg = reg;
    b_generated = Some g;
    b_driver = driver;
    b_heartbeat = heartbeat;
    b_observer = observer;
    b_workload = wstats;
    b_tasks = (wl_task :: tasks);
    b_crash = crash;
    b_mem = t.Wd_targets.Zkmini.mem;
    b_res = t.Wd_targets.Zkmini.res;
    b_client = client;
  }

(* --- dfsmini --- *)

let boot_dfs ?engine ?schedule ~sched ~reg ~mode ~special:_ () =
  let prog = Wd_targets.Dfsmini.program () in
  Wd_ir.Validate.check_exn prog;
  let g = Generate.analyze_cached prog in
  let run_prog =
    match mode with
    | Wd_generated -> g.Generate.red.Wd_analysis.Reduction.instrumented
    | Wd_no_context | Wd_none -> prog
  in
  let t = Wd_targets.Dfsmini.boot ?engine ~sched ~reg ~prog:run_prog () in
  let driver = Driver.create ?schedule sched in
  attach_watchdog ?engine ~mode ~sched ~driver ~res:t.Wd_targets.Dfsmini.res
    ~main:t.Wd_targets.Dfsmini.dn g;
  Driver.add_checker driver
    (Wd_detectors.Probe.make ~id:"probe:dfs-rw" (fun () ->
         match Wd_targets.Dfsmini.put_block t ~blkid:"__probe" ~data:"pdata" with
         | `Err m -> `Fail ("probe put failed: " ^ m)
         | `Timeout -> `Fail "probe put timed out"
         | `Ok _ -> (
             match Wd_targets.Dfsmini.read_block_req t ~blkid:"__probe" with
             | `Ok v when expect_str ~prefix:"pdata" v -> `Ok
             | `Ok _ -> `Fail "probe read back wrong data"
             | `Timeout -> `Fail "probe read timed out"
             | `Err m -> `Fail m)));
  Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:dfs-queue"
       ~res:t.Wd_targets.Dfsmini.res ~queue:Wd_targets.Dfsmini.request_queue
       ~max_depth:64);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.mem_utilisation ~id:"signal:dfs-mem"
       ~mem:t.Wd_targets.Dfsmini.mem ~max_util:0.9);
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:t.Wd_targets.Dfsmini.net
      ~endpoint:Wd_targets.Dfsmini.namenode ~match_prefix:"hb:dn1" ()
  in
  let observer = Wd_detectors.Observer.create sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let wl_task =
    Wd_targets.Workload.spawn ~name:"dfs-client" ~sched
      ~period:(Wd_sim.Time.ms 80)
      ~op:(fun i ->
        let blkid = Fmt.str "b%04d" i in
        if i mod 4 = 3 then
          Wd_targets.Dfsmini.read_block_req t ~blkid:(Fmt.str "b%04d" (max 0 (i - 3)))
        else Wd_targets.Dfsmini.put_block t ~blkid ~data:(Fmt.str "payload-%d" i))
      ~on_result:(fun r ->
        Wd_detectors.Observer.observe observer (Wd_detectors.Observer.of_result r))
      wstats
  in
  let tasks = Wd_targets.Dfsmini.start t in
  Driver.start driver;
  let crash () =
    List.iter (Wd_sim.Sched.kill sched) tasks;
    Driver.stop driver
  in
  let blkids = Array.init 128 (fun k -> "lb" ^ string_of_int k) in
  let client i =
    let blkid = blkids.(i mod 128) in
    if i mod 4 = 3 then Wd_targets.Dfsmini.read_block_req t ~blkid
    else Wd_targets.Dfsmini.put_block t ~blkid ~data:("lp" ^ string_of_int i)
  in
  {
    b_system = "dfsmini";
    b_sched = sched;
    b_reg = reg;
    b_generated = Some g;
    b_driver = driver;
    b_heartbeat = heartbeat;
    b_observer = observer;
    b_workload = wstats;
    b_tasks = (wl_task :: tasks);
    b_crash = crash;
    b_mem = t.Wd_targets.Dfsmini.mem;
    b_res = t.Wd_targets.Dfsmini.res;
    b_client = client;
  }

(* --- cstore --- *)

let boot_cs ?engine ?schedule ~sched ~reg ~mode ~special () =
  let spin_bug = special = Some "spin_bug" in
  let prog = Wd_targets.Cstore.program ~spin_bug () in
  Wd_ir.Validate.check_exn prog;
  let g = Generate.analyze_cached prog in
  let run_prog =
    match mode with
    | Wd_generated -> g.Generate.red.Wd_analysis.Reduction.instrumented
    | Wd_no_context | Wd_none -> prog
  in
  let t = Wd_targets.Cstore.boot ?engine ~sched ~reg ~prog:run_prog () in
  let driver = Driver.create ?schedule sched in
  attach_watchdog ?engine ~mode ~sched ~driver ~res:t.Wd_targets.Cstore.res
    ~main:t.Wd_targets.Cstore.main g;
  Driver.add_checker driver
    (Wd_detectors.Probe.roundtrip ~id:"probe:cs-rw"
       ~set:(fun () -> Wd_targets.Cstore.write t ~key:"__probe" ~value:"p1")
       ~get:(fun () -> Wd_targets.Cstore.read t ~key:"__probe")
       ~expect:(expect_str ~prefix:"val:p1"));
  Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:cs-queue"
       ~res:t.Wd_targets.Cstore.res ~queue:Wd_targets.Cstore.request_queue
       ~max_depth:64);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.mem_utilisation ~id:"signal:cs-mem"
       ~mem:t.Wd_targets.Cstore.mem ~max_util:0.9);
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:t.Wd_targets.Cstore.net
      ~endpoint:Wd_targets.Cstore.seed_node ~match_prefix:"gossip:cs1" ()
  in
  let observer = Wd_detectors.Observer.create sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let wl_task =
    Wd_targets.Workload.spawn ~name:"cs-client" ~sched ~period:(Wd_sim.Time.ms 50)
      ~op:(fun i ->
        let key = Fmt.str "row%03d" (i mod 40) in
        if i mod 3 = 2 then Wd_targets.Cstore.read t ~key
        else Wd_targets.Cstore.write t ~key ~value:(Fmt.str "cell%d" i))
      ~on_result:(fun r ->
        Wd_detectors.Observer.observe observer (Wd_detectors.Observer.of_result r))
      wstats
  in
  let tasks = Wd_targets.Cstore.start t in
  Driver.start driver;
  let crash () =
    List.iter (Wd_sim.Sched.kill sched) tasks;
    Driver.stop driver
  in
  let keys = Array.init 128 (fun k -> "lrow" ^ string_of_int k) in
  let client i =
    let key = keys.(i mod 128) in
    if i mod 3 = 2 then Wd_targets.Cstore.read t ~key
    else Wd_targets.Cstore.write t ~key ~value:("lc" ^ string_of_int i)
  in
  {
    b_system = "cstore";
    b_sched = sched;
    b_reg = reg;
    b_generated = Some g;
    b_driver = driver;
    b_heartbeat = heartbeat;
    b_observer = observer;
    b_workload = wstats;
    b_tasks = (wl_task :: tasks);
    b_crash = crash;
    b_mem = t.Wd_targets.Cstore.mem;
    b_res = t.Wd_targets.Cstore.res;
    b_client = client;
  }

(* --- mqbroker --- *)

let boot_mq ?engine ?schedule ~sched ~reg ~mode ~special:_ () =
  let prog = Wd_targets.Mqbroker.program () in
  Wd_ir.Validate.check_exn prog;
  let g = Generate.analyze_cached prog in
  let run_prog =
    match mode with
    | Wd_generated -> g.Generate.red.Wd_analysis.Reduction.instrumented
    | Wd_no_context | Wd_none -> prog
  in
  let t = Wd_targets.Mqbroker.boot ?engine ~sched ~reg ~prog:run_prog () in
  let driver = Driver.create ?schedule sched in
  attach_watchdog ?engine ~mode ~sched ~driver ~res:t.Wd_targets.Mqbroker.res
    ~main:t.Wd_targets.Mqbroker.broker g;
  Driver.add_checker driver
    (Wd_detectors.Probe.make ~id:"probe:mq-produce" (fun () ->
         match Wd_targets.Mqbroker.produce t ~data:"__probe" with
         | `Ok _ -> `Ok
         | `Timeout -> `Fail "produce timed out"
         | `Err m -> `Fail m));
  Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:mq-queue"
       ~res:t.Wd_targets.Mqbroker.res ~queue:Wd_targets.Mqbroker.request_queue
       ~max_depth:64);
  Driver.add_checker driver
    (Wd_detectors.Signalmon.mem_utilisation ~id:"signal:mq-mem"
       ~mem:t.Wd_targets.Mqbroker.mem ~max_util:0.9);
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:t.Wd_targets.Mqbroker.net
      ~endpoint:Wd_targets.Mqbroker.monitor_node ~match_prefix:"mqstats:mq1" ()
  in
  let observer = Wd_detectors.Observer.create sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let wl_task =
    Wd_targets.Workload.spawn ~name:"mq-producer" ~sched
      ~period:(Wd_sim.Time.ms 30)
      ~op:(fun i -> Wd_targets.Mqbroker.produce t ~data:(Fmt.str "event-%d" i))
      ~on_result:(fun r ->
        Wd_detectors.Observer.observe observer (Wd_detectors.Observer.of_result r))
      wstats
  in
  let tasks = Wd_targets.Mqbroker.start t in
  Driver.start driver;
  let crash () =
    List.iter (Wd_sim.Sched.kill sched) tasks;
    Driver.stop driver
  in
  let client i = Wd_targets.Mqbroker.produce t ~data:("le" ^ string_of_int i) in
  {
    b_system = "mqbroker";
    b_sched = sched;
    b_reg = reg;
    b_generated = Some g;
    b_driver = driver;
    b_heartbeat = heartbeat;
    b_observer = observer;
    b_workload = wstats;
    b_tasks = (wl_task :: tasks);
    b_crash = crash;
    b_mem = t.Wd_targets.Mqbroker.mem;
    b_res = t.Wd_targets.Mqbroker.res;
    b_client = client;
  }

let boot ?engine ?schedule ~sched ~reg ~mode ?special system =
  match system with
  | "kvs" -> boot_kvs ?engine ?schedule ~sched ~reg ~mode ~special ()
  | "zkmini" -> boot_zk ?engine ?schedule ~sched ~reg ~mode ~special ()
  | "dfsmini" -> boot_dfs ?engine ?schedule ~sched ~reg ~mode ~special ()
  | "cstore" -> boot_cs ?engine ?schedule ~sched ~reg ~mode ~special ()
  | "mqbroker" -> boot_mq ?engine ?schedule ~sched ~reg ~mode ~special ()
  | s -> invalid_arg ("Systems.boot: unknown system " ^ s)

let all_systems = [ "kvs"; "zkmini"; "dfsmini"; "cstore"; "mqbroker" ]
