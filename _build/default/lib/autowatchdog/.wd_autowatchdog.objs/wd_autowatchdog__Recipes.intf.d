lib/autowatchdog/recipes.mli: Wd_analysis Wd_ir
