(* Tests for the IR: primitives, builder + validator, pretty printer, and
   the interpreter in both main and checker modes. *)

open Wd_ir
open Ast
module B = Builder
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let vint = function VInt i -> i | v -> Alcotest.failf "not an int: %a" pp_value v
let vstr = function VStr s -> s | v -> Alcotest.failf "not a string: %a" pp_value v

(* --- prims --- *)

let p = Prims.apply

let test_prims_strings () =
  check_str "str_of_int" "42" (vstr (p "str_of_int" [ VInt 42 ]));
  check_int "int_of_str" 17 (vint (p "int_of_str" [ VStr "17" ]));
  check_str "concat" "a/b" (vstr (p "concat" [ VStr "a"; VStr "/"; VStr "b" ]));
  check "contains yes" true (p "contains" [ VStr "hello"; VStr "ell" ] = VBool true);
  check "contains no" true (p "contains" [ VStr "hello"; VStr "xyz" ] = VBool false);
  check_str "str_drop" "cd" (vstr (p "str_drop" [ VStr "abcd"; VInt 2 ]));
  check_str "str_take" "ab" (vstr (p "str_take" [ VStr "abcd"; VInt 2 ]));
  check_str "dirname" "a/b/" (vstr (p "dirname" [ VStr "a/b/c" ]));
  check_str "dirname flat" "" (vstr (p "dirname" [ VStr "nofile" ]))

let test_prims_bytes () =
  let b = p "bytes_of_str" [ VStr "xy" ] in
  check_str "roundtrip" "xy" (vstr (p "str_of_bytes" [ b ]));
  (match p "bytes_make" [ VInt 3; VStr "z" ] with
  | VBytes bb -> check_str "filled" "zzz" (Bytes.to_string bb)
  | _ -> Alcotest.fail "bytes_make");
  let cat = p "bytes_cat" [ p "bytes_of_str" [ VStr "a" ]; p "bytes_of_str" [ VStr "b" ] ] in
  check_str "cat" "ab" (vstr (p "str_of_bytes" [ cat ]));
  check "checksum equal" true
    (p "checksum" [ b ] = p "checksum" [ p "bytes_of_str" [ VStr "xy" ] ]);
  check "checksum differs" false
    (p "checksum" [ b ] = p "checksum" [ p "bytes_of_str" [ VStr "yx" ] ])

let test_prims_maps () =
  let m = p "map_put" [ p "map_empty" []; VStr "k"; VInt 1 ] in
  check_int "get" 1 (vint (p "map_get" [ m; VStr "k" ]));
  check "mem" true (p "map_mem" [ m; VStr "k" ] = VBool true);
  check_int "len" 1 (vint (p "map_len" [ m ]));
  check_int "get_opt default" 9 (vint (p "map_get_opt" [ m; VStr "x"; VInt 9 ]));
  let m2 = p "map_del" [ m; VStr "k" ] in
  check "deleted" true (p "map_mem" [ m2; VStr "k" ] = VBool false);
  (* overwrite keeps a single entry *)
  let m3 = p "map_put" [ m; VStr "k"; VInt 2 ] in
  check_int "overwrite len" 1 (vint (p "map_len" [ m3 ]));
  check_int "overwrite val" 2 (vint (p "map_get" [ m3; VStr "k" ]))

let test_prims_lists () =
  let l = VList [ VInt 1; VInt 2; VInt 3 ] in
  check_int "head" 1 (vint (p "list_head" [ l ]));
  check "tail" true (p "list_tail" [ l ] = VList [ VInt 2; VInt 3 ]);
  check_int "nth" 3 (vint (p "list_nth" [ l; VInt 2 ]));
  check "mem" true (p "list_mem" [ VInt 2; l ] = VBool true);
  check "rev" true (p "list_rev" [ l ] = VList [ VInt 3; VInt 2; VInt 1 ]);
  check "range" true (p "range" [ VInt 3 ] = VList [ VInt 0; VInt 1; VInt 2 ]);
  check "sorted yes" true
    (p "is_sorted" [ VList [ VStr "a"; VStr "b" ] ] = VBool true);
  check "sorted no" true
    (p "is_sorted" [ VList [ VStr "b"; VStr "a" ] ] = VBool false)

let test_prims_errors () =
  (match p "list_head" [ VList [] ] with
  | _ -> Alcotest.fail "expected Prim_error"
  | exception Prims.Prim_error _ -> ());
  match p "no_such_prim" [] with
  | _ -> Alcotest.fail "expected Prim_error"
  | exception Prims.Prim_error _ -> ()

let prop_map_put_get =
  QCheck.Test.make ~name:"map_put then map_get returns the value" ~count:100
    QCheck.(pair (small_list (pair small_string small_int)) (pair small_string small_int))
    (fun (seeds, (k, v)) ->
      let m =
        List.fold_left
          (fun m (k, v) -> p "map_put" [ m; VStr k; VInt v ])
          (p "map_empty" []) seeds
      in
      let m = p "map_put" [ m; VStr k; VInt v ] in
      p "map_get" [ m; VStr k ] = VInt v)

let prop_copy_value_equal =
  QCheck.Test.make ~name:"copy_value is equal but does not share bytes" ~count:50
    QCheck.small_string
    (fun s ->
      let v = VMap [ ("b", VBytes (Bytes.of_string s)); ("l", VList [ VInt 1 ]) ] in
      let c = copy_value v in
      let equal_before = value_equal v c in
      (match (v, s) with
      | VMap (("b", VBytes orig) :: _), _ when String.length s > 0 ->
          Bytes.set orig 0 (if Bytes.get orig 0 = '!' then '?' else '!')
      | _ -> ());
      let independent =
        String.length s = 0 || not (value_equal v c)
      in
      equal_before && independent)

(* The Format-based printer the Buffer renderer replaced, kept verbatim as
   the reference: value_to_string must stay byte-for-byte equal to it. *)
let rec pp_value_ref ppf = function
  | VUnit -> Fmt.string ppf "()"
  | VBool b -> Fmt.bool ppf b
  | VInt i -> Fmt.int ppf i
  | VStr s -> Fmt.pf ppf "%S" s
  | VBytes b ->
      if Bytes.length b <= 16 then Fmt.pf ppf "bytes%S" (Bytes.to_string b)
      else Fmt.pf ppf "bytes<%d>" (Bytes.length b)
  | VList vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp_value_ref) vs
  | VPair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_value_ref a pp_value_ref b
  | VMap kvs ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (k, v) ->
              Fmt.pf ppf "%s=%a" k pp_value_ref v))
        kvs

let gen_value =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return VUnit;
              map (fun b -> VBool b) bool;
              map (fun i -> VInt i) int;
              map (fun s -> VStr s) string_small;
              map (fun s -> VBytes (Bytes.of_string s)) (string_size (0 -- 24));
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun vs -> VList vs) (list_size (0 -- 4) (self (n / 2)));
              map2 (fun a b -> VPair (a, b)) (self (n / 2)) (self (n / 2));
              map
                (fun kvs -> VMap kvs)
                (list_size (0 -- 4)
                   (pair string_small (self (n / 2))));
            ]))

let prop_render_matches_reference =
  QCheck.Test.make ~name:"render_value is byte-identical to the Format printer"
    ~count:500
    (QCheck.make ~print:value_to_string gen_value)
    (fun v -> String.equal (value_to_string v) (Fmt.str "%a" pp_value_ref v))

let prop_value_immutable_sound =
  QCheck.Test.make
    ~name:"value_immutable is false exactly when a VBytes is reachable"
    ~count:300
    (QCheck.make ~print:value_to_string gen_value)
    (fun v ->
      let rec has_bytes = function
        | VBytes _ -> true
        | VUnit | VBool _ | VInt _ | VStr _ -> false
        | VList vs -> List.exists has_bytes vs
        | VPair (a, b) -> has_bytes a || has_bytes b
        | VMap kvs -> List.exists (fun (_, x) -> has_bytes x) kvs
      in
      value_immutable v = not (has_bytes v))

(* --- builder + validator --- *)

let valid_prog =
  B.program "t"
    ~funcs:
      [
        B.func "main" ~params:[]
          [
            B.let_ "x" (B.i 1);
            B.call ~bind:"y" "double" [ B.v "x" ];
            B.assert_ B.(v "y" =: i 2) "double";
            B.return_unit;
          ];
        B.func "double" ~params:[ "n" ] [ B.return B.(v "n" *: i 2) ];
      ]
    ~entries:[ B.entry "e" "main" ]

let test_validate_accepts () = Validate.check_exn valid_prog

let expect_invalid prog =
  match Validate.check prog with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error problems -> check "has problems" true (problems <> [])

let test_validate_unbound_var () =
  expect_invalid
    (B.program "t"
       ~funcs:[ B.func "f" ~params:[] [ B.return (B.v "ghost") ] ]
       ~entries:[])

let test_validate_undefined_call () =
  expect_invalid
    (B.program "t"
       ~funcs:[ B.func "f" ~params:[] [ B.call "nowhere" [] ] ]
       ~entries:[])

let test_validate_arity () =
  expect_invalid
    (B.program "t"
       ~funcs:
         [
           B.func "f" ~params:[] [ B.call "g" [ B.i 1 ] ];
           B.func "g" ~params:[ "a"; "b" ] [ B.return_unit ];
         ]
       ~entries:[])

let test_validate_unknown_prim () =
  expect_invalid
    (B.program "t"
       ~funcs:[ B.func "f" ~params:[] [ B.let_ "x" (B.prim "made_up" []) ] ]
       ~entries:[])

let test_validate_duplicate_func () =
  expect_invalid
    (B.program "t"
       ~funcs:[ B.func "f" ~params:[] []; B.func "f" ~params:[] [] ]
       ~entries:[])

let test_validate_bad_entry () =
  expect_invalid
    (B.program "t" ~funcs:[ B.func "f" ~params:[ "x" ] [] ]
       ~entries:[ B.entry "e" "f" (* arity mismatch: no args *) ])

let test_locs_unique () =
  let uids = ref [] in
  let rec collect block =
    List.iter
      (fun st ->
        uids := Loc.uid st.loc :: !uids;
        match st.node with
        | If (_, t, e) -> collect t; collect e
        | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> collect b
        | Try (b, _, h) -> collect b; collect h
        | Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _ | Compute _
        | Hook _ -> ())
      block
  in
  List.iter (fun f -> collect f.body) valid_prog.funcs;
  let sorted = List.sort_uniq compare !uids in
  check_int "all unique" (List.length !uids) (List.length sorted);
  check "all assigned" true (List.for_all (fun u -> u >= 0) !uids)

let test_pp_smoke () =
  let text = Pp.program_to_string valid_prog in
  check "mentions function" true (String.length text > 0);
  let f = find_func valid_prog "double" in
  let ftext = Pp.func_to_string f in
  check "has return" true
    (let found = ref false in
     String.iteri (fun i _ ->
         if i + 6 <= String.length ftext && String.sub ftext i 6 = "return" then
           found := true) ftext;
     !found)

(* --- interpreter --- *)

let run_main ?(globals = []) ?entries prog f =
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) "d");
  Runtime.add_net res (Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) "n");
  Runtime.add_mem res (Wd_env.Memory.create ~reg ~capacity:10_000 "m");
  List.iter (fun (k, v) -> Runtime.set_global res k v) globals;
  let main = Interp.create ~node:"node1" ~res prog in
  let failed = ref None in
  ignore
    (Sched.spawn ~name:"test" s (fun () ->
         try f s res main with e -> failed := Some e));
  (match entries with
  | Some es -> ignore (Interp.start ~entries:es main s)
  | None -> ());
  ignore (Sched.run ~until:(Time.sec 60) s);
  match !failed with Some e -> raise e | None -> ()

let test_interp_arith_and_calls () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "fib" ~params:[ "n" ]
            [
              B.if_ B.(v "n" <=: i 1)
                [ B.return (B.v "n") ]
                [
                  B.call ~bind:"a" "fib" [ B.(v "n" -: i 1) ];
                  B.call ~bind:"b" "fib" [ B.(v "n" -: i 2) ];
                  B.return B.(v "a" +: v "b");
                ];
            ];
        ]
      ~entries:[]
  in
  Validate.check_exn prog;
  run_main prog (fun _s _res main ->
      check_int "fib 10" 55 (vint (Interp.call main "fib" [ VInt 10 ])))

let test_interp_short_circuit () =
  (* (false && 1/0=0) must not evaluate the division *)
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "f" ~params:[]
            [ B.return B.(bconst false &&: (i 1 /: i 0 =: i 0)) ];
        ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      check "short circuit" true (Interp.call main "f" [] = VBool false))

let test_interp_division_by_zero () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "f" ~params:[] [ B.return B.(i 1 /: i 0) ] ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      match Interp.call main "f" [] with
      | _ -> Alcotest.fail "expected violation"
      | exception Interp.Violation { vkind = "arith"; _ } -> ())

let test_interp_while_foreach () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "sum_to" ~params:[ "n" ]
            [
              B.let_ "acc" (B.i 0);
              B.let_ "i" (B.i 1);
              B.while_ B.(v "i" <=: v "n")
                [ B.assign "acc" B.(v "acc" +: v "i"); B.assign "i" B.(v "i" +: i 1) ];
              B.return (B.v "acc");
            ];
          B.func "sum_list" ~params:[ "l" ]
            [
              B.let_ "acc" (B.i 0);
              B.foreach "x" (B.v "l") [ B.assign "acc" B.(v "acc" +: v "x") ];
              B.return (B.v "acc");
            ];
        ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      check_int "while" 15 (vint (Interp.call main "sum_to" [ VInt 5 ]));
      check_int "foreach" 6
        (vint (Interp.call main "sum_list" [ VList [ VInt 1; VInt 2; VInt 3 ] ])))

let test_interp_assert_violation () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "f" ~params:[] [ B.assert_ (B.bconst false) "must hold" ] ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      match Interp.call main "f" [] with
      | _ -> Alcotest.fail "expected assert violation"
      | exception Interp.Violation { vkind = "assert"; msg; _ } ->
          check_str "message" "must hold" msg)

let test_interp_try_catches_env_errors () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "f" ~params:[]
            [
              B.let_ "caught" (B.s "");
              B.try_
                [ B.disk_read ~bind:"x" ~disk:"d" ~path:(B.s "ghost") () ]
                ~exn:"e"
                ~handler:[ B.assign "caught" (B.v "e") ];
              B.return (B.v "caught");
            ];
        ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      let msg = vstr (Interp.call main "f" []) in
      check "caught io error" true (String.length msg > 0))

let test_interp_state_and_queue_ops () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "writer" ~params:[]
            [
              B.state_set ~global:"g" ~value:(B.i 7);
              B.queue_put ~queue:"q" ~data:(B.s "msg");
              B.return_unit;
            ];
          B.func "reader" ~params:[]
            [
              B.state_get ~bind:"g" ~global:"g";
              B.queue_get ~bind:"m" ~queue:"q" ~timeout_ms:100 ();
              B.return (B.pair (B.v "g") (B.v "m"));
            ];
        ]
      ~entries:[]
  in
  run_main prog (fun _s res main ->
      ignore (Interp.call main "writer" []);
      check_int "global visible" 7 (vint (Runtime.global res "g"));
      match Interp.call main "reader" [] with
      | VPair (VInt 7, VMap kvs) ->
          check "queue ok" true (List.assoc "ok" kvs = VBool true);
          check "payload" true (List.assoc "payload" kvs = VStr "msg")
      | v -> Alcotest.failf "unexpected %a" pp_value v)

let test_interp_net_between_nodes () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "send" ~params:[]
            [ B.net_send ~net:"n" ~dst:(B.s "node2") ~payload:(B.s "hi") ];
          B.func "recv" ~params:[]
            [
              B.net_recv ~bind:"m" ~net:"n" ~timeout_ms:1000 ();
              B.return (B.v "m");
            ];
        ]
      ~entries:[]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) "n" in
  Runtime.add_net res net;
  Wd_env.Net.register net "node1";
  Wd_env.Net.register net "node2";
  let n1 = Interp.create ~node:"node1" ~res prog in
  let n2 = Interp.create ~node:"node2" ~res prog in
  let got = ref VUnit in
  ignore (Sched.spawn s (fun () -> ignore (Interp.call n1 "send" [])));
  ignore (Sched.spawn s (fun () -> got := Interp.call n2 "recv" []));
  ignore (Sched.run s);
  match !got with
  | VMap kvs ->
      check "ok" true (List.assoc "ok" kvs = VBool true);
      check "src" true (List.assoc "src" kvs = VStr "node1");
      check "payload" true (List.assoc "payload" kvs = VStr "hi")
  | v -> Alcotest.failf "unexpected %a" pp_value v

let test_interp_sync_excludes () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "bump" ~params:[]
            [
              B.sync "lk"
                [
                  B.state_get ~bind:"x" ~global:"x";
                  B.sleep_ms 5;
                  B.state_set ~global:"x" ~value:B.(v "x" +: i 1);
                ];
              B.return_unit;
            ];
        ]
      ~entries:[]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  Runtime.set_global res "x" (VInt 0);
  let main = Interp.create ~node:"n1" ~res prog in
  for _ = 1 to 5 do
    ignore (Sched.spawn s (fun () -> ignore (Interp.call main "bump" [])))
  done;
  ignore (Sched.run s);
  (* without the lock the read-sleep-write pattern would lose updates *)
  check_int "no lost updates" 5 (vint (Runtime.global res "x"))

let test_interp_entries_run_as_tasks () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "ticker" ~params:[]
            [
              B.while_true
                [
                  B.sleep_ms 100;
                  B.state_get ~bind:"n" ~global:"ticks";
                  B.state_set ~global:"ticks" ~value:B.(v "n" +: i 1);
                ];
            ];
        ]
      ~entries:[ B.entry "tick" "ticker" ]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  Runtime.set_global res "ticks" (VInt 0);
  let main = Interp.create ~node:"n1" ~res prog in
  let tasks = Interp.start main s in
  check_int "one entry task" 1 (List.length tasks);
  ignore (Sched.run ~until:(Time.sec 1) s);
  check "ticked about 10 times" true
    (let n = vint (Runtime.global res "ticks") in
     n >= 9 && n <= 10)

let test_interp_busy_loop_advances_time () =
  (* an infinite pure loop must not freeze the simulation *)
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "spin" ~params:[]
            [ B.while_true [ B.let_ "x" (B.i 1); B.assign "x" B.(v "x" +: i 1) ] ];
        ]
      ~entries:[ B.entry "spin" "spin" ]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let res = Runtime.create ~reg ~rng:(Wd_sim.Rng.create ~seed:5) in
  let main = Interp.create ~node:"n1" ~res prog in
  ignore (Interp.start main s);
  (match Sched.run ~until:(Time.ms 10) s with
  | Sched.Time_limit -> ()
  | _ -> Alcotest.fail "busy loop should hit the time limit, not hang the host");
  check "many statements executed" true (Interp.stmts_executed main > 1000)

let test_interp_pairs () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "swap" ~params:[ "p" ]
            [ B.return (B.pair (B.snd_ (B.v "p")) (B.fst_ (B.v "p"))) ];
        ]
      ~entries:[]
  in
  run_main prog (fun _s _res main ->
      check "swapped" true
        (Interp.call main "swap" [ VPair (VInt 1, VInt 2) ]
        = VPair (VInt 2, VInt 1)))

let test_interp_compute_advances_time () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "work" ~params:[] [ B.compute (Time.ms 7) ] ]
      ~entries:[]
  in
  run_main prog (fun s _res main ->
      let t0 = Sched.now s in
      ignore (Interp.call main "work" []);
      check "charged the modelled CPU" true (Int64.sub (Sched.now s) t0 >= Time.ms 7))

let test_interp_log_op () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "speak" ~params:[] [ B.log (B.s "hello log") ] ]
      ~entries:[]
  in
  run_main prog (fun _s res main ->
      ignore (Interp.call main "speak" []);
      match Runtime.log_lines res with
      | [ (_, node, msg) ] ->
          check_str "node" "node1" node;
          check "message" true (String.length msg > 0)
      | _ -> Alcotest.fail "one log line")

let test_interp_recv_timeout_shape () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "poll" ~params:[]
            [
              B.net_recv ~bind:"m" ~net:"n" ~timeout_ms:20 ();
              B.return (B.v "m");
            ];
          B.func "qpoll" ~params:[]
            [
              B.queue_get ~bind:"m" ~queue:"empty_q" ~timeout_ms:20 ();
              B.return (B.v "m");
            ];
        ]
      ~entries:[]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) "n" in
  Wd_env.Net.register net "node1";
  Runtime.add_net res net;
  let main = Interp.create ~node:"node1" ~res prog in
  ignore
    (Sched.spawn s (fun () ->
         (match Interp.call main "poll" [] with
         | VMap kvs -> check "net timeout ok=false" true (List.assoc "ok" kvs = VBool false)
         | _ -> Alcotest.fail "net poll");
         match Interp.call main "qpoll" [] with
         | VMap kvs -> check "queue timeout ok=false" true (List.assoc "ok" kvs = VBool false)
         | _ -> Alcotest.fail "queue poll"));
  ignore (Sched.run s)

(* --- checker-mode isolation --- *)

let checker_pair prog =
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) "d");
  Runtime.add_mem res (Wd_env.Memory.create ~reg ~capacity:10_000 "m");
  let main = Interp.create ~node:"n1" ~res prog in
  let chk = Interp.create ~mode:Interp.Checker ~node:"n1" ~res prog in
  (s, reg, res, main, chk)

let test_checker_disk_writes_redirected () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "w" ~params:[]
            [ B.disk_write ~disk:"d" ~path:(B.s "data/f") ~data:(B.prim "bytes_of_str" [ B.s "real" ]) ];
        ]
      ~entries:[]
  in
  let s, _reg, res, main, chk = checker_pair prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call main "w" []);
         (* main wrote the real path *)
         let d = Runtime.disk res "d" in
         check "real path" true (Wd_env.Disk.peek d ~path:"data/f" <> None);
         (* overwrite main data, then run the checker *)
         Wd_env.Disk.poke d ~path:"data/f" (Bytes.of_string "real");
         ignore (Interp.call chk "w" []);
         check_str "main data untouched by checker" "real"
           (Bytes.to_string (Option.get (Wd_env.Disk.peek d ~path:"data/f")));
         check "checker wrote scratch" true
           (Wd_env.Disk.peek d ~path:"__wd/data/f" <> None)));
  ignore (Sched.run s)

let test_checker_state_overlay () =
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "mutate" ~params:[]
            [ B.state_set ~global:"g" ~value:(B.s "checker-was-here") ];
          B.func "read" ~params:[]
            [ B.state_get ~bind:"g" ~global:"g"; B.return (B.v "g") ];
        ]
      ~entries:[]
  in
  let s, _reg, res, _main, chk = checker_pair prog in
  Runtime.set_global res "g" (VStr "original");
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call chk "mutate" []);
         check_str "main state untouched" "original" (vstr (Runtime.global res "g"));
         (* the checker sees its own overlay *)
         check_str "overlay visible to checker" "checker-was-here"
           (vstr (Interp.call chk "read" []))));
  ignore (Sched.run s)

let test_checker_mem_alloc_released () =
  let prog =
    B.program "t"
      ~funcs:
        [ B.func "a" ~params:[] [ B.mem_alloc ~pool:"m" ~size:(B.i 1000) ] ]
      ~entries:[]
  in
  let s, _reg, res, _main, chk = checker_pair prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call chk "a" []);
         check_int "no leak from checker" 0 (Wd_env.Memory.used (Runtime.mem res "m"))));
  ignore (Sched.run s)

let test_checker_lock_released_after_probe () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "crit" ~params:[] [ B.sync "lk" [ B.compute_us 1 ] ] ]
      ~entries:[]
  in
  let s, _reg, res, _main, chk = checker_pair prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call chk "crit" []);
         check "lock free afterwards" false
           (Wd_sim.Smutex.locked (Runtime.lock res "lk"))));
  ignore (Sched.run s)

let test_checker_lock_timeout_is_liveness_violation () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "crit" ~params:[] [ B.sync "lk" [ B.compute_us 1 ] ] ]
      ~entries:[]
  in
  let s, _reg, res, _main, chk = checker_pair prog in
  ignore
    (Sched.spawn s (fun () ->
         (* wedge the lock from another task forever *)
         Wd_sim.Smutex.lock (Runtime.lock res "lk");
         Sched.sleep (Time.sec 30)));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep (Time.ms 1);
         match Interp.call chk "crit" [] with
         | _ -> Alcotest.fail "expected liveness violation"
         | exception Interp.Violation { vkind = "liveness"; _ } -> ()));
  ignore (Sched.run s)

let test_checker_queue_put_shadowed () =
  let prog =
    B.program "t"
      ~funcs:[ B.func "push" ~params:[] [ B.queue_put ~queue:"q" ~data:(B.i 9) ] ]
      ~entries:[]
  in
  let s, _reg, res, main, chk = checker_pair prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call main "push" []);
         ignore (Interp.call chk "push" []);
         (* the checker's message went to the shadow queue *)
         check_int "real queue has only main's" 1
           (Wd_sim.Channel.length (Runtime.queue res "q"));
         check_int "shadow queue has the checker's" 1
           (Wd_sim.Channel.length (Runtime.queue res "__wd:q"))));
  ignore (Sched.run s)

let test_checker_net_send_shadowed () =
  let prog =
    B.program "t"
      ~funcs:
        [ B.func "ping" ~params:[] [ B.net_send ~net:"n" ~dst:(B.s "peer") ~payload:(B.s "x") ] ]
      ~entries:[]
  in
  let s = Sched.create ~seed:4 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:5 in
  let res = Runtime.create ~reg ~rng in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) "n" in
  Wd_env.Net.register net "n1";
  Wd_env.Net.register net "peer";
  Runtime.add_net res net;
  let chk = Interp.create ~mode:Interp.Checker ~node:"n1" ~res prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Interp.call chk "ping" []);
         Sched.sleep (Time.ms 10);
         (* nothing in the real peer inbox; the shadow got it *)
         check_int "real inbox untouched" 0 (Wd_env.Net.inbox_length net "peer");
         check_int "shadow inbox" 1 (Wd_env.Net.inbox_length net "__wd:peer")));
  ignore (Sched.run s)

let test_hook_captures_copies () =
  (* hooks deliver deep copies: mutating the captured bytes afterwards must
     not affect what the sink saw *)
  let prog =
    B.program "t"
      ~funcs:
        [
          B.func "f" ~params:[]
            [
              B.let_ "payload" (B.prim "bytes_of_str" [ B.s "AB" ]);
              { node = Hook 0; loc = Loc.dummy };
              B.disk_write ~disk:"d" ~path:(B.s "f") ~data:(B.v "payload");
            ];
        ]
      ~entries:[]
  in
  let s, _reg, _res, main, _chk = checker_pair prog in
  Interp.register_hook main ~id:0
    { Interp.hook_checker = "u"; hook_vars = [ "payload" ] };
  let seen = ref [] in
  Interp.set_hook_sink main (fun id values -> seen := (id, values) :: !seen);
  ignore (Sched.spawn s (fun () -> ignore (Interp.call main "f" [])));
  ignore (Sched.run s);
  match !seen with
  | [ (0, [ ("payload", VBytes b) ]) ] ->
      check_str "captured value" "AB" (Bytes.to_string b)
  | _ -> Alcotest.fail "hook did not fire exactly once with the payload"

let () =
  Alcotest.run "wd_ir"
    [
      ( "prims",
        [
          Alcotest.test_case "strings" `Quick test_prims_strings;
          Alcotest.test_case "bytes" `Quick test_prims_bytes;
          Alcotest.test_case "maps" `Quick test_prims_maps;
          Alcotest.test_case "lists" `Quick test_prims_lists;
          Alcotest.test_case "errors" `Quick test_prims_errors;
          QCheck_alcotest.to_alcotest prop_map_put_get;
          QCheck_alcotest.to_alcotest prop_copy_value_equal;
          QCheck_alcotest.to_alcotest prop_render_matches_reference;
          QCheck_alcotest.to_alcotest prop_value_immutable_sound;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_accepts;
          Alcotest.test_case "unbound var" `Quick test_validate_unbound_var;
          Alcotest.test_case "undefined call" `Quick test_validate_undefined_call;
          Alcotest.test_case "arity" `Quick test_validate_arity;
          Alcotest.test_case "unknown prim" `Quick test_validate_unknown_prim;
          Alcotest.test_case "duplicate func" `Quick test_validate_duplicate_func;
          Alcotest.test_case "bad entry" `Quick test_validate_bad_entry;
          Alcotest.test_case "unique locs" `Quick test_locs_unique;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arith and calls" `Quick test_interp_arith_and_calls;
          Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
          Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
          Alcotest.test_case "while/foreach" `Quick test_interp_while_foreach;
          Alcotest.test_case "assert violation" `Quick test_interp_assert_violation;
          Alcotest.test_case "try catches env errors" `Quick
            test_interp_try_catches_env_errors;
          Alcotest.test_case "state and queues" `Quick test_interp_state_and_queue_ops;
          Alcotest.test_case "net between nodes" `Quick test_interp_net_between_nodes;
          Alcotest.test_case "sync excludes" `Quick test_interp_sync_excludes;
          Alcotest.test_case "entries as tasks" `Quick test_interp_entries_run_as_tasks;
          Alcotest.test_case "busy loop advances time" `Quick
            test_interp_busy_loop_advances_time;
          Alcotest.test_case "pairs" `Quick test_interp_pairs;
          Alcotest.test_case "compute advances time" `Quick
            test_interp_compute_advances_time;
          Alcotest.test_case "log op" `Quick test_interp_log_op;
          Alcotest.test_case "poll timeout shapes" `Quick
            test_interp_recv_timeout_shape;
        ] );
      ( "checker-mode",
        [
          Alcotest.test_case "disk writes redirected" `Quick
            test_checker_disk_writes_redirected;
          Alcotest.test_case "state overlay" `Quick test_checker_state_overlay;
          Alcotest.test_case "alloc released" `Quick test_checker_mem_alloc_released;
          Alcotest.test_case "lock released" `Quick
            test_checker_lock_released_after_probe;
          Alcotest.test_case "lock timeout is liveness" `Quick
            test_checker_lock_timeout_is_liveness_violation;
          Alcotest.test_case "queue put shadowed" `Quick
            test_checker_queue_put_shadowed;
          Alcotest.test_case "net send shadowed" `Quick
            test_checker_net_send_shadowed;
          Alcotest.test_case "hook captures copies" `Quick test_hook_captures_copies;
        ] );
    ]
