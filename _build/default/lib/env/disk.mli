(** Simulated disk with a latency model and injectable partial faults.

    Sites consulted in the fault registry have the shape
    ["disk:<name>:<op>:<path>"] where [<op>] is one of [write], [append],
    [read], [stat], [delete], [sync], [list]. Corruption faults damage the
    payload silently — reads succeed and return bad bytes, exactly the
    state-corruption gray failure the paper targets. *)

exception Io_error of string

type t

val create :
  ?seek_ns:int64 ->
  ?per_byte_ns:int64 ->
  reg:Faultreg.t ->
  rng:Wd_sim.Rng.t ->
  string ->
  t

val name : t -> string

val write : ?as_path:string -> t -> path:string -> Bytes.t -> unit
(** [as_path] overrides the path used for fault-site matching, letting a
    redirected (scratch) write share the fate of the original path. *)

val append : ?as_path:string -> t -> path:string -> Bytes.t -> unit
val read : ?as_path:string -> t -> path:string -> Bytes.t
val exists : t -> path:string -> bool
val delete : ?as_path:string -> t -> path:string -> unit
val sync : t -> unit
val list : t -> prefix:string -> string list

val peek : t -> path:string -> Bytes.t option
(** Fault-free, cost-free inspection (tests / ground truth). *)

val poke : t -> path:string -> Bytes.t -> unit
(** Fault-free, cost-free store (test setup). *)

val paths : t -> string list
(** All stored paths, fault-free and cost-free (tests / ground truth). *)

val file_count : t -> int

val stats : t -> int * int * int * int * int
(** [(reads, writes, bytes_read, bytes_written, syncs)]. *)

val checksum : Bytes.t -> int64
(** FNV-1a checksum used by integrity checkers. *)
