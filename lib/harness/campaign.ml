(* Campaign runner: execute one failure scenario against one system with a
   chosen watchdog mode, and classify what each detector class saw.

   Timeline: boot -> warmup (fault-free) -> inject -> observe. Detection
   latency is measured from the injection instant; reports arriving before
   injection are false alarms (fault-free accuracy runs use the same path
   with no scenario). *)

module Catalog = Wd_faults.Catalog
module Driver = Wd_watchdog.Driver
module Report = Wd_watchdog.Report

type pinpoint = Exact | Near of string | Wrong of string | No_loc

type outcome = {
  o_detected : bool;
  o_latency : int64 option;
  o_loc : Wd_ir.Loc.t option;
  o_pinpoint : pinpoint option; (* None when scenario has no ground truth *)
  o_first_report : Report.t option;
}

let no_detection =
  { o_detected = false; o_latency = None; o_loc = None; o_pinpoint = None;
    o_first_report = None }

type run = {
  r_sid : string;
  r_system : string;
  r_outcomes : (string * outcome) list;
      (* "mimic", "probe", "signal", "heartbeat", "observer" *)
  r_pre_inject_reports : int;
  r_workload_ok_ratio : float;
  r_workload_issued : int;
  r_checker_count : int;
  r_sim_events : int;
}

let classify_checker id =
  let has_prefix p =
    String.length id >= String.length p && String.sub id 0 (String.length p) = p
  in
  if has_prefix "probe:" then `Probe
  else if has_prefix "signal:" then `Signal
  else if has_prefix Wd_infer.Checkers.id_prefix then `Inferred
  else `Mimic

let outcome_of_report ~near ~inject_at ~truth_func (r : Report.t) =
  let latency =
    let d = Int64.sub r.Report.at inject_at in
    if d < 0L then 0L else d
  in
  let pinpoint =
    match truth_func with
    | None -> None
    | Some truth -> (
        match r.Report.loc with
        | None -> Some No_loc
        | Some loc ->
            let f = Wd_ir.Loc.func loc in
            if f = truth then Some Exact
            else if near f truth then Some (Near f)
            else Some (Wrong f))
  in
  {
    o_detected = true;
    o_latency = Some latency;
    o_loc = r.Report.loc;
    o_pinpoint = pinpoint;
    o_first_report = Some r;
  }

let outcome_of_suspicion ~inject_at at =
  match at with
  | None -> no_detection
  | Some t ->
      let latency = Int64.sub t inject_at in
      {
        o_detected = true;
        o_latency = Some (if latency < 0L then 0L else latency);
        o_loc = None;
        o_pinpoint = None;
        o_first_report = None;
      }

(* First post-injection report of each checker class. *)
let class_outcomes ~near ~inject_at ~truth_func reports =
  let first cls =
    List.find_opt
      (fun (r : Report.t) ->
        classify_checker r.Report.checker_id = cls && r.Report.at >= inject_at)
      reports
  in
  let out cls =
    match first cls with
    | Some r -> outcome_of_report ~near ~inject_at ~truth_func r
    | None -> no_detection
  in
  (out `Mimic, out `Probe, out `Signal, out `Inferred)

type config = {
  seed : int;
  warmup : int64;
  observe : int64;
  mode : Systems.watchdog_mode;
  infer : Wd_infer.Synth.model option;
  schedule : Wd_watchdog.Schedule.policy;
}

let default_config =
  {
    seed = 42;
    warmup = Wd_sim.Time.sec 8;
    observe = Wd_sim.Time.sec 45;
    mode = Systems.Wd_generated;
    infer = None;
    schedule = Wd_watchdog.Schedule.fixed;
  }

let run_raw cfg ~system ~scenario () =
  let sched = Wd_sim.Sched.create ~seed:cfg.seed () in
  let reg = Wd_env.Faultreg.create () in
  let special = Option.bind scenario (fun s -> s.Catalog.special) in
  (* The monitor must own the trace before the system boots so startup ops
     (recovery reads, first writes) are part of its ordering state, exactly
     as they were during mining. *)
  let monitor =
    Option.map (fun _ -> Wd_infer.Monitor.create sched) cfg.infer
  in
  (* Pre-register the boot work inside a bootstrap task? Boot functions only
     create tasks; client/probe activity happens once the sim runs. *)
  let booted =
    Systems.boot ~schedule:cfg.schedule ~sched ~reg ~mode:cfg.mode ?special
      system
  in
  (match (cfg.infer, monitor) with
  | Some model, Some monitor ->
      List.iter
        (Driver.add_checker booted.Systems.b_driver)
        (Wd_infer.Checkers.compile ~model ~monitor ())
  | _ -> ());
  (match Wd_sim.Sched.run ~until:cfg.warmup sched with
  | Wd_sim.Sched.Time_limit | Wd_sim.Sched.Quiescent -> ()
  | Wd_sim.Sched.Deadlock tasks ->
      failwith
        (Fmt.str "deadlock during warmup: %a"
           Fmt.(list ~sep:(any ", ") Wd_sim.Sched.pp_task)
           tasks));
  let inject_at = Wd_sim.Sched.now sched in
  (match scenario with
  | Some s ->
      ignore (Catalog.inject reg s ~at:inject_at);
      if s.Catalog.special = Some "crash" then
        Wd_sim.Sched.at sched inject_at booted.Systems.b_crash
  | None -> ());
  let until = Int64.add inject_at cfg.observe in
  (match Wd_sim.Sched.run ~until sched with
  | Wd_sim.Sched.Time_limit | Wd_sim.Sched.Quiescent -> ()
  | Wd_sim.Sched.Deadlock _ ->
      (* A global deadlock can be the scenario's very point (all non-daemon
         tasks wedged); nothing left to simulate. *)
      ());
  (booted, inject_at)

let run_scenario ?(cfg = default_config) sid =
  let scenario = Catalog.find sid in
  let booted, inject_at = run_raw cfg ~system:scenario.Catalog.system ~scenario:(Some scenario) () in
  let reports = Driver.reports booted.Systems.b_driver in
  let pre_inject =
    List.length (List.filter (fun (r : Report.t) -> r.Report.at < inject_at) reports)
  in
  let truth_func = scenario.Catalog.truth_func in
  (* "Near" localisation = reported function directly calls or is called by
     the ground-truth function — the paper's "caller of the faulting
     function" ballpark. *)
  let near =
    match booted.Systems.b_generated with
    | None -> fun _ _ -> false
    | Some g ->
        let prog =
          g.Wd_autowatchdog.Generate.red.Wd_analysis.Reduction.original
        in
        (* analysis-time callgraph, shared across every run of the system *)
        let cg = g.Wd_autowatchdog.Generate.callgraph in
        fun f truth ->
          Wd_ir.Ast.has_func prog f
          && (List.mem_assoc truth (Wd_analysis.Callgraph.callees cg f)
             || List.mem_assoc f (Wd_analysis.Callgraph.callees cg truth))
  in
  let mimic, probe, signal, inferred =
    class_outcomes ~near ~inject_at ~truth_func reports
  in
  let heartbeat =
    outcome_of_suspicion ~inject_at
      (Wd_detectors.Heartbeat.suspected_at booted.Systems.b_heartbeat)
  in
  let observer =
    outcome_of_suspicion ~inject_at
      (Wd_detectors.Observer.suspected_at booted.Systems.b_observer)
  in
  let _, _, events = Wd_sim.Sched.stats booted.Systems.b_sched in
  {
    r_sid = sid;
    r_system = scenario.Catalog.system;
    r_outcomes =
      [
        ("mimic", mimic);
        ("probe", probe);
        ("signal", signal);
        ("inferred", inferred);
        ("heartbeat", heartbeat);
        ("observer", observer);
      ];
    r_pre_inject_reports = pre_inject;
    r_workload_ok_ratio =
      Wd_targets.Workload.success_ratio booted.Systems.b_workload;
    r_workload_issued = booted.Systems.b_workload.Wd_targets.Workload.issued;
    r_checker_count = Driver.checker_count booted.Systems.b_driver;
    r_sim_events = events;
  }

(* A campaign cell: one scenario under one configuration (mode, seed,
   windows). Cells are self-contained deterministic worlds, so a batch is
   embarrassingly parallel; [run_batch] farms cells out to the persistent
   process-wide domain pool and returns results in input order, making the
   parallel batch byte-identical to the sequential one. *)
type cell = { cell_sid : string; cell_cfg : config }

let cell ?(cfg = default_config) sid = { cell_sid = sid; cell_cfg = cfg }

let run_batch ?jobs cells =
  Wd_parallel.Pool.run_map ?jobs
    (fun c -> run_scenario ~cfg:c.cell_cfg c.cell_sid)
    cells

(* Fault-free accuracy run: any report or suspicion is a false alarm. *)
type fault_free = {
  ff_system : string;
  ff_mimic_fp : int;
  ff_probe_fp : int;
  ff_signal_fp : int;
  ff_inferred_fp : int;
  ff_heartbeat_fp : int;
  ff_observer_fp : int;
  ff_workload_ok_ratio : float;
  ff_sim_events : int;
  ff_checker_count : int;
}

let run_fault_free ?(cfg = default_config) ?special system =
  let scenario =
    Option.map
      (fun sp ->
        {
          Catalog.sid = "none";
          description = "fault-free";
          system;
          fclass = Catalog.Transient_error;
          faults = [];
          special = Some sp;
          truth_func = None;
          expected = Catalog.exp ();
        })
      special
  in
  let booted, _inject_at = run_raw cfg ~system ~scenario () in
  let reports = Driver.reports booted.Systems.b_driver in
  let count cls =
    List.length
      (List.filter
         (fun (r : Report.t) -> classify_checker r.Report.checker_id = cls)
         reports)
  in
  let _, _, events = Wd_sim.Sched.stats booted.Systems.b_sched in
  {
    ff_system = system;
    ff_mimic_fp = count `Mimic;
    ff_probe_fp = count `Probe;
    ff_signal_fp = count `Signal;
    ff_inferred_fp = count `Inferred;
    ff_heartbeat_fp =
      (if Wd_detectors.Heartbeat.suspected booted.Systems.b_heartbeat then 1 else 0);
    ff_observer_fp =
      (if Wd_detectors.Observer.suspected booted.Systems.b_observer then 1 else 0);
    ff_workload_ok_ratio =
      Wd_targets.Workload.success_ratio booted.Systems.b_workload;
    ff_sim_events = events;
    ff_checker_count = Driver.checker_count booted.Systems.b_driver;
  }
