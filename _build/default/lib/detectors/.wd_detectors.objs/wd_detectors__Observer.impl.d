lib/detectors/observer.ml: Int64 List Wd_sim
