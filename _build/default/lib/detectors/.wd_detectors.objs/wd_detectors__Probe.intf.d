lib/detectors/probe.mli: Wd_watchdog
