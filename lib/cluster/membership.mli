(** Per-node membership agent: heartbeat gossip plus end-to-end probing of
    every peer — the fleet plane's two extrinsic evidence channels.

    Gossip is deliberately shallow (a periodic fabric broadcast touching no
    disk or queue), so it keeps flowing from a limping node: the
    gray-failure signature. Probes are deep: the responder runs a bounded
    client operation through its local service before acking.

    The per-peer state (last gossip heard, consecutive probe failures,
    in-flight probes) is private; the fleet reads it through the accusation
    views below. The agent does not own the fabric inbox — the node's
    election agent drains one ordered stream and dispatches membership
    traffic into the [note_*]/[handle_*] entry points. *)

type event =
  | Suspected of { who : string; by : string; at : int64 }
      (** gossip silence past the suspicion timeout *)
  | Probe_failing of { who : string; by : string; at : int64 }
  | Probe_recovered of { who : string; by : string; at : int64 }

type t

val create :
  ?gossip_period:int64 ->
  ?probe_period:int64 ->
  ?probe_timeout:int64 ->
  ?suspicion_timeout:int64 ->
  ?fail_threshold:int ->
  ?digest_source:(unit -> Fabric.digest list) ->
  sched:Wd_sim.Sched.t ->
  fabric:Fabric.t ->
  node:Node.t ->
  unit ->
  t
(** [digest_source] supplies the node's recent report digests, piggybacked
    on each heartbeat for leader-side corroboration. *)

val start : t -> unit
(** Spawn the gossip, prober and suspicion-sweep tasks. *)

val on_event : t -> (event -> unit) -> unit
val me : t -> string

(** {2 Accusation views} — what this agent tells the fleet (piggybacked on
    gossip, and folded in directly when this agent's node leads) *)

val accused_probe : t -> string list
(** Peers whose deep probes this agent currently sees failing (at or past
    the consecutive-failure threshold), sorted. *)

val suspects : t -> string list
(** Peers suspected for gossip silence, sorted. *)

val probe_failing : t -> string -> bool
val probe_ok_count : t -> string -> int
(** Lifetime healthy-ack count for a peer — how often its full request
    pipeline answered a deep probe. *)

(** {2 Inbox entry points} — called by the election agent's dispatcher *)

val note_gossip : t -> from_:string -> unit
val handle_probe_req : t -> from_:string -> seq:int -> unit
(** Answers off-thread so a stalled local service never blocks the
    receiver loop. *)

val note_probe_ack : t -> from_:string -> seq:int -> healthy:bool -> unit
