lib/watchdog/policy.mli: Report
