(* Generation-time configuration: what counts as vulnerable (§4.1), which
   reduction steps run (ablations), and the runtime budgets for generated
   checkers. *)

type t = {
  vuln : Wd_analysis.Vulnerable.config;
  opts : Wd_analysis.Reduction.options;
  checker_period : int64;
  checker_timeout : int64;
  slow_budget : int64 option;
  lock_timeout : int64;   (* checker-mode try-lock budget *)
  enhance : bool;         (* recipe-based safety checks (read-back, etc.) *)
}

let default =
  {
    vuln = Wd_analysis.Vulnerable.default;
    opts = Wd_analysis.Reduction.default_options;
    checker_period = Wd_sim.Time.sec 1;
    checker_timeout = Wd_sim.Time.sec 6;
    slow_budget = None; (* adaptive: the driver learns each checker's baseline *)
    lock_timeout = Wd_sim.Time.sec 4;
    enhance = true;
  }
