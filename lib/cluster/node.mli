(** One fleet member: a [wd_targets] instance plus its
    AutoWatchdog-generated driver, booted into a shared scheduler world
    with a *private* fault registry — a fault injected at ["disk:*"] on
    node 2 degrades node 2 only, even though every node names its disk
    identically.

    Nodes carry intrinsic evidence sources (generated mimic checkers,
    queue-depth signal checkers, a closed-loop client workload) and a
    bounded ring of recent report digests for gossip piggybacking; the
    ring, like the rest of the node state, is reachable only through the
    functions below. Cross-node probing and liveness gossip live in
    [Membership], correlation in [Fleet]. *)

type t

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?schedule:Wd_watchdog.Schedule.policy ->
  sched:Wd_sim.Sched.t ->
  system:Topology.system ->
  index:int ->
  unit ->
  t
(** Boot one node of the given (typed) target system. The fabric endpoint
    is [Fabric.node_name index]; [schedule] is the node driver's checker
    scheduling policy (default {!Wd_watchdog.Schedule.fixed}). *)

val id : t -> string
val index : t -> int
val system : t -> string
(** The target system's registry name, for tables and repro dispatch. *)

val reg : t -> Wd_env.Faultreg.t
(** The node's private fault registry: scenario injection degrades this
    node's environment only. *)

val driver : t -> Wd_watchdog.Driver.t
val workload : t -> Wd_targets.Workload.stats
val res : t -> Wd_ir.Runtime.resources
val tasks : t -> Wd_sim.Sched.task list

val local_probe : ?timeout:int64 -> t -> bool
(** Bounded end-to-end client operation through the local service, run by
    the membership responder before acking a peer's probe: a limping node
    answers gossip but fails this. *)

val start_burst : t -> unit
(** Open-loop burst flooder for the fleet-overload scenario: legitimate
    traffic, no fault anywhere. *)

val reports : t -> Wd_watchdog.Report.t list
val checker_count : t -> int

val recent_digests : t -> Fabric.digest list
(** Newest-first bounded view of the node's local report digests, the
    payload membership piggybacks on heartbeat gossip. *)

val kind_of_checker_id : string -> Wd_watchdog.Checker.kind
(** Classify a checker id by its ["probe:"] / ["signal:"] prefix
    convention (default: mimic). *)

val recover : t -> func:string -> reason:string -> bool
(** Execute a fleet [Recover] command: microreboot the component owning
    [func]. *)

val recovery_events : t -> Wd_watchdog.Recovery.event list
