lib/analysis/callgraph.ml: Hashtbl List Wd_ir
