(* Inter-node fabric: the message plane the membership service gossips and
   probes over, built on [Wd_env.Net] so the fault machinery applies
   unchanged. Sites are "net:fabric:send:<src>:<dst>", so
   "net:fabric:send:n3:*" cuts every link out of n3 and
   "net:fabric:send:n1:n3" cuts exactly one direction of one link — the
   asymmetric partial partition the fleet plane must localise.

   The fabric owns its own fault registry, separate from every node's
   private environment registry: a fabric fault degrades links without
   touching any node's disks or queues, and vice versa. *)

(* Compact summary of a locally-surfaced report, piggybacked on heartbeat
   gossip so peers can corroborate leader evidence without a second
   channel: enough to classify (checker id carries the kind prefix) and to
   window by freshness, without the full payload. *)
type digest = { d_checker : string; d_fkind : string; d_at : int64 }

type msg =
  | Gossip of {
      from_ : string;
      seq : int;
      accuse_probe : string list;
          (* peers whose deep probes I currently see failing *)
      accuse_suspect : string list;
          (* peers I suspect for gossip silence *)
      digests : digest list;
          (* my recent report digests, for corroboration *)
    }
      (* liveness heartbeat: "I am scheduling and my network path to you
         works" — deliberately cheap, touching no disk or queue, so a
         limping node keeps gossiping (the gray-failure signature). The
         piggybacked accusations and digests are how extrinsic evidence
         reaches the elected leader without an extra channel. *)
  | Probe_req of { from_ : string; seq : int }
      (* end-to-end health probe: the receiver runs a bounded client
         operation against its local service before acking *)
  | Probe_ack of { from_ : string; seq : int; healthy : bool }
  | Report_ship of { from_ : string; wire : string }
      (* a locally-surfaced watchdog report, wire-encoded
         ([Wd_watchdog.Report.to_wire]) and shipped to the current leader *)
  | Elect of { from_ : string; round : int }
      (* bully election: challenge to every higher-priority peer *)
  | Elect_ok of { from_ : string; round : int }
      (* a higher-priority peer is alive and takes over the election *)
  | Coordinator of { from_ : string; round : int }
      (* leadership announcement; receivers adopt and re-ship retained
         reports so the new leader's inboxes rebuild *)
  | Recover of { from_ : string; func : string; wire : string }
      (* leader -> indicted node: microreboot the component owning [func];
         [wire] is the evidence report that localised it *)

type t = {
  net : msg Wd_env.Net.t;
  reg : Wd_env.Faultreg.t;
  nodes : string list;
}

let fabric_name = "fabric"
let node_name i = Fmt.str "n%d" i

let create ?(links = []) ~sched ~nodes () =
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let net =
    Wd_env.Net.create ~base_latency:(Wd_sim.Time.ms 1) ~reg ~rng fabric_name
  in
  List.iter (Wd_env.Net.register net) nodes;
  List.iter
    (fun (src, dst, profile) ->
      Wd_env.Net.set_link_profile net ~src ~dst profile)
    links;
  { net; reg; nodes }

let peers t me = List.filter (fun n -> n <> me) t.nodes
let reg t = t.reg
let node_ids t = t.nodes

(* Approximate wire size of each message class, in bytes. Only
   bandwidth-bounded links care: a big wire-encoded report ship serialises
   for size/rate seconds there, while a heartbeat barely registers — the
   asymmetry behind the slow-link-masked-gray scenario. *)
let msg_size = function
  | Gossip { accuse_probe; accuse_suspect; digests; _ } ->
      48
      + (8 * (List.length accuse_probe + List.length accuse_suspect))
      + List.fold_left
          (fun acc (d : digest) -> acc + 16 + String.length d.d_checker)
          0 digests
  | Probe_req _ | Probe_ack _ -> 24
  | Elect _ | Elect_ok _ | Coordinator _ -> 16
  | Report_ship { wire; _ } -> 32 + String.length wire
  | Recover { func; wire; _ } -> 32 + String.length func + String.length wire

(* [Net.send] can raise [Net_error] under an Error fault; fabric callers
   treat an unsendable message like a lost one. *)
let send t ~src ~dst m =
  try Wd_env.Net.send ~size:(msg_size m) t.net ~src ~dst m
  with Wd_env.Net.Net_error _ -> ()

let recv_timeout t endpoint ~timeout =
  Wd_env.Net.recv_timeout t.net endpoint ~timeout

let stats t = Wd_env.Net.stats t.net
