(** Declarative fleet topology: node count, per-node target system, and
    per-link latency/bandwidth overrides. A {!spec} is pure data consumed
    by [Sim.boot]; building one validates everything (system names, link
    indices, bandwidths), so a bad campaign config fails when it is built,
    not mid-boot. *)

(** Typed handle to a fleet-capable target system. Resolving through
    {!system_of_string} is the only way in from strings, so an unknown name
    is unrepresentable downstream; adding a target extends the variant and
    the compiler finds every dispatch site. *)
type system = Zkmini | Cstore

val system_name : system -> string

val registry : (string * system) list
(** The fleet-capable targets, by wire/CLI name. *)

val registered_systems : string list

val system_of_string : string -> (system, string) result
val system_of_string_exn : string -> system

type link = {
  l_src : int;
  l_dst : int;
  l_latency : int64 option;  (** propagation override; [None] = fabric base *)
  l_bytes_per_sec : int option;  (** [None] = unbounded *)
}

type spec = private {
  t_name : string;
  t_systems : system list;  (** node i runs [List.nth t_systems i] *)
  t_links : link list;  (** directed overrides; unlisted links = defaults *)
}

val uniform : ?name:string -> nodes:int -> system -> spec
(** N nodes of one system, default symmetric fabric. *)

val mixed : ?name:string -> system list -> spec
(** One node per listed system, in order. *)

val with_link :
  spec -> src:int -> dst:int -> ?latency:int64 -> ?bytes_per_sec:int ->
  unit -> spec
(** Override one direction of one link. Raises [Invalid_argument] on
    out-of-range indices, self-links or non-positive bandwidth. *)

val nodes : spec -> int
val system_at : spec -> int -> system
val node_systems : spec -> string list

val describe : spec -> string
(** Uniform default-fabric specs read as the bare system name (keeping
    single-system tables stable); anything else reads as [t_name]. *)

val hetero9 : unit -> spec
(** 9 nodes, zkmini at slots 1 and 6, cstore elsewhere; nodes 6-8 sit in a
    remote rack behind asymmetric links (4 ms crossing towards the rack,
    256 KiB/s back). *)

val hetero15 : unit -> spec
(** 15 nodes, zkmini at slots 1, 7 and 13; nodes 10-14 remote as above. *)

val link_profiles :
  spec -> node_name:(int -> string) -> (string * string * Wd_env.Net.link_profile) list
(** The link overrides as fabric endpoint triples, for [Net.set_link_profile]. *)

val pp : Format.formatter -> spec -> unit
