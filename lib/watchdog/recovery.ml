(* Cheap recovery (§5.2): with the watchdog's localisation information, a
   failure can be repaired by microrebooting just the affected component —
   replacing the wedged or dead task — instead of restarting the whole
   process.

   A component is a named set of functions plus a respawn closure. Wired as
   a driver action, [action] maps each report's pinpointed function to its
   owning component and reboots it, with a per-component backoff so a
   persistent fault cannot trigger a reboot storm. *)

type component = {
  comp_name : string;
  comp_funcs : string list;  (* functions this component owns *)
  respawn : unit -> Wd_sim.Sched.task;
  mutable task : Wd_sim.Sched.task;
  mutable restarts : int;
  mutable last_restart_at : int64;
}

type event = {
  ev_at : int64;
  ev_component : string;
  ev_reason : string;
}

type t = {
  sched : Wd_sim.Sched.t;
  backoff : int64;        (* minimum interval between reboots of one component *)
  max_restarts : int;     (* per component; beyond this, give up (escalate) *)
  mutable components : component list;
  mutable events : event list;
  mutable escalations : string list; (* components that exhausted their budget *)
}

let create ?(backoff = Wd_sim.Time.sec 5) ?(max_restarts = 10) sched =
  { sched; backoff; max_restarts; components = []; events = []; escalations = [] }

let register t ~name ~funcs ~respawn ~task =
  t.components <-
    {
      comp_name = name;
      comp_funcs = funcs;
      respawn;
      task;
      restarts = 0;
      (* far past, but safe against Int64 subtraction overflow *)
      last_restart_at = -1_000_000_000_000_000L;
    }
    :: t.components

let component_for t func =
  List.find_opt (fun c -> List.mem func c.comp_funcs) t.components

let events t = List.rev t.events
let escalations t = List.rev t.escalations

let restarts t ~name =
  match List.find_opt (fun c -> c.comp_name = name) t.components with
  | Some c -> c.restarts
  | None -> 0

(* [reason] is a thunk: reboot attempts that bounce off the backoff window
   or an exhausted budget — the common case during a report storm — never
   pay for formatting the reason string. It is forced exactly once, for the
   event log of an actual reboot. *)
let microreboot t c ~reason =
  let now = Wd_sim.Sched.now t.sched in
  if Int64.sub now c.last_restart_at < t.backoff then ()
  else if c.restarts >= t.max_restarts then begin
    if not (List.mem c.comp_name t.escalations) then
      t.escalations <- c.comp_name :: t.escalations
  end
  else begin
    c.last_restart_at <- now;
    c.restarts <- c.restarts + 1;
    t.events <-
      { ev_at = now; ev_component = c.comp_name; ev_reason = reason () }
      :: t.events;
    (* replace the task: kill whatever is left of the old one, then respawn *)
    Wd_sim.Sched.kill t.sched c.task;
    c.task <- c.respawn ()
  end

(* Supervision sweep: a component whose task died of an exception is
   rebooted even without a watchdog report — the supervisor half of the
   microreboot story (report-driven reboots handle wedged-but-alive
   components; the sweep handles dead ones). *)
let supervise ?(period = Wd_sim.Time.sec 1) t =
  Wd_sim.Sched.spawn ~name:"recovery-supervisor" ~daemon:true t.sched (fun () ->
      while true do
        Wd_sim.Sched.sleep period;
        List.iter
          (fun c ->
            match Wd_sim.Sched.task_status c.task with
            | Some (Wd_sim.Sched.Failed e) ->
                microreboot t c
                  ~reason:(fun () ->
                    Fmt.str "task died: %s" (Printexc.to_string e))
            | Some Wd_sim.Sched.Exited
            | Some Wd_sim.Sched.Killed
            | None ->
                ())
          t.components
      done)

(* Command entry point for externally-driven recovery: a fleet plane that
   indicted this process names the faulty function (from the shipped mimic
   report's localisation); map it to its owning component and microreboot.
   Returns whether the function mapped to a registered component — the
   reboot itself is still subject to backoff and the restart budget. *)
let recover_function t ~func ~reason =
  match component_for t func with
  | None -> false
  | Some c ->
      microreboot t c ~reason:(fun () -> reason);
      true

(* The driver action: reboot the component owning the report's pinpointed
   function. Reports without localisation cannot be mapped and are left to
   coarser recovery (full restart), which this module deliberately does not
   perform. *)
let action t (r : Report.t) =
  match r.Report.loc with
  | None -> ()
  | Some loc -> (
      match component_for t (Wd_ir.Loc.func loc) with
      | None -> ()
      | Some c ->
          microreboot t c ~reason:(fun () ->
              Fmt.str "%s: %s at %a" r.Report.checker_id
                (Report.fkind_name r.Report.fkind)
                Wd_ir.Loc.pp loc))

let pp_event ppf e =
  Fmt.pf ppf "[%a] microreboot %s (%s)" Wd_sim.Time.pp e.ev_at e.ev_component
    e.ev_reason
