lib/detectors/observer.mli: Wd_sim
