(* Central fault-injection registry.

   Every environment operation names a *site* string such as
   "disk:data:write:/wal/0042" or "net:follower1:send". Before executing, the
   operation consults the registry; matching active faults dictate extra
   behaviour (delay, hang, error, corruption, drop). The registry also logs
   every activation — this is the ground truth that experiment metrics
   compare detector reports against. *)

type behaviour =
  | Delay of int64        (* add fixed latency *)
  | Slow_factor of float  (* multiply modelled latency *)
  | Hang                  (* block until the fault window closes *)
  | Error of string       (* fail the operation with this message *)
  | Corrupt               (* silently damage the payload *)
  | Drop                  (* network only: lose the message *)

type fault = {
  id : string;
  site_pattern : string;  (* exact match, or prefix match ending in '*' *)
  behaviour : behaviour;
  start_at : int64;
  stop_at : int64;        (* Time.never for an unbounded fault *)
  once : bool;            (* deactivate after first trigger *)
}

type trigger = { at : int64; fault_id : string; site : string }

type t = {
  mutable faults : fault list;
  mutable triggers : trigger list;
  mutable spent : (string, unit) Hashtbl.t; (* ids of exhausted once-faults *)
}

let create () = { faults = []; triggers = []; spent = Hashtbl.create 7 }

let inject t fault = t.faults <- fault :: t.faults

let clear t =
  t.faults <- [];
  Hashtbl.reset t.spent

let remove t ~id = t.faults <- List.filter (fun f -> f.id <> id) t.faults

let faults t = t.faults
let triggers t = List.rev t.triggers

(* Hot-path guard: with no faults injected (every clean perf/load run, and
   every op outside a fault window after [clear]) a consult can match
   nothing and record nothing — callers skip building the site string
   entirely. *)
let armed t = t.faults <> []

let site_matches ~pattern ~site =
  let n = String.length pattern in
  if n > 0 && pattern.[n - 1] = '*' then
    let prefix = String.sub pattern 0 (n - 1) in
    String.length site >= String.length prefix
    && String.sub site 0 (String.length prefix) = prefix
  else pattern = site

let active_at f ~now = now >= f.start_at && now < f.stop_at

(* Faults matching [site] right now, oldest injection first. Records each
   match as a trigger and retires once-faults. *)
let consult t ~site ~now =
  let matching =
    List.filter
      (fun f ->
        active_at f ~now
        && (not (Hashtbl.mem t.spent f.id))
        && site_matches ~pattern:f.site_pattern ~site)
      t.faults
  in
  List.iter
    (fun f ->
      t.triggers <- { at = now; fault_id = f.id; site } :: t.triggers;
      if f.once then Hashtbl.replace t.spent f.id ())
    matching;
  List.rev_map (fun f -> (f.id, f.behaviour)) (List.rev matching)

(* First activation instant of a fault id, from the trigger log. Experiments
   use this as the failure-start timestamp when computing detection
   latency. *)
let first_trigger t ~id =
  (* [t.triggers] is newest-first; the first activation is the oldest. *)
  match List.filter (fun tr -> tr.fault_id = id) (List.rev t.triggers) with
  | oldest :: _ -> Some oldest.at
  | [] -> None

let pp_behaviour ppf = function
  | Delay d -> Fmt.pf ppf "delay %a" Wd_sim.Time.pp d
  | Slow_factor f -> Fmt.pf ppf "slow x%.1f" f
  | Hang -> Fmt.string ppf "hang"
  | Error m -> Fmt.pf ppf "error %s" m
  | Corrupt -> Fmt.string ppf "corrupt"
  | Drop -> Fmt.string ppf "drop"

let pp_fault ppf f =
  Fmt.pf ppf "%s@%s: %a [%a,%a)" f.id f.site_pattern pp_behaviour f.behaviour
    Wd_sim.Time.pp f.start_at Wd_sim.Time.pp f.stop_at

(* Helper used by env subsystems: apply the blocking/latency consequences of
   the matched behaviours. Returns [Ok corrupted?] or [Error msg]; the caller
   interprets corruption and drop for its own data model. *)
let apply_common behaviours ~now:_ ~stop_of =
  let corrupt = ref false in
  let dropped = ref false in
  let err = ref None in
  List.iter
    (fun (id, b) ->
      match b with
      | Delay d -> Wd_sim.Sched.sleep d
      | Slow_factor _ -> () (* handled by caller's latency model *)
      | Hang ->
          let stop = stop_of id in
          if stop = Wd_sim.Time.never then
            Wd_sim.Sched.suspend ~reason:(Fmt.str "fault %s hang" id)
              ~register:(fun _waker -> ())
          else begin
            let s = Wd_sim.Sched.get () in
            Wd_sim.Sched.suspend ~reason:(Fmt.str "fault %s hang" id)
              ~register:(fun waker -> Wd_sim.Sched.at s stop waker)
          end
      | Error m -> if !err = None then err := Some m
      | Corrupt -> corrupt := true
      | Drop -> dropped := true)
    behaviours;
  match !err with
  | Some m -> Result.Error m
  | None -> Result.Ok (!corrupt, !dropped)

let slow_factor behaviours =
  List.fold_left
    (fun acc (_, b) -> match b with Slow_factor f -> acc *. f | _ -> acc)
    1.0 behaviours

let stop_of t id =
  match List.find_opt (fun f -> f.id = id) t.faults with
  | Some f -> f.stop_at
  | None -> Wd_sim.Time.never
