(** Extrinsic crash failure detector: suspects a node after heartbeat
    silence longer than [timeout]. Perfect for fail-stop, blind to gray
    failures where the heartbeat thread keeps running (Table 1). *)

type t

val create :
  ?timeout:int64 ->
  sched:Wd_sim.Sched.t ->
  net:Wd_ir.Ast.value Wd_env.Net.t ->
  endpoint:string ->
  match_prefix:string ->
  unit ->
  t
(** Spawns a daemon consuming [endpoint]'s inbox; messages whose string
    payload starts with [match_prefix] count as heartbeats. *)

val suspected : t -> bool
val suspected_at : t -> int64 option
val beats : t -> int
