lib/harness/experiments.mli: Campaign Metrics Wd_analysis Wd_autowatchdog Wd_ir
