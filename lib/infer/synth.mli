(** Invariant synthesizer (stage 2): fit timing envelopes, liveness gaps,
    never-fail signatures and ordering/exclusion invariants to mined
    observations, with support thresholds that reject coincidental
    invariants. Deterministic: same observations (and config) produce an
    identical, canonically sorted model with a stable {!digest}. *)

type body =
  | Envelope of { p99 : int64; deadline : int64 }
      (** in flight or completed beyond [deadline] = liveness finding *)
  | Gap of { max_gap : int64; budget : int64 }
      (** silence beyond [budget] after the key was first seen = hang *)
  | Never_fail  (** any runtime failure of this key = error signature *)
  | Precedes of { first : string }
      (** the invariant's key must never occur unless [first] occurred *)
  | Never_concurrent of { other : string }
      (** same-target exclusion: overlap with [other] in flight = finding *)

type invariant = {
  ikey : string;
  ibody : body;
  isupport : int;
  iruns : int;
  iloc : Wd_ir.Loc.t option;
}

type config = {
  min_samples : int;
  min_runs : int;
  safety_factor : int;
  min_deadline : int64;
  gap_factor : int;
  min_gap_budget : int64;
  max_gap_budget : int64;
  concurrent_min_samples : int;
  max_concurrent_pairs : int;
}

val default_config : config

type model = {
  m_system : string;
  m_runs : int;
  m_config : config;
  m_invariants : invariant list;
}

val synthesize :
  ?config:config ->
  ?locate:(string -> Wd_ir.Loc.t option) ->
  system:string ->
  Mine.observations ->
  model
(** [locate] resolves a runtime op key to a static location (typically via
    {!Wd_analysis.Vulnerable} keys) for report pinpointing. *)

val family_name : body -> string
val family_counts : model -> (string * int) list
val to_canonical : model -> string
val digest : model -> string
val pp_invariant : Format.formatter -> invariant -> unit
val pp_model : Format.formatter -> model -> unit
