test/test_autowatchdog.mli:
