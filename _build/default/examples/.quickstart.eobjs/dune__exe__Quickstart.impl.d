examples/quickstart.ml: Fmt Int64 List Wd_analysis Wd_autowatchdog Wd_env Wd_ir Wd_sim Wd_targets Wd_watchdog
