test/test_cache.ml: Alcotest List Wd_analysis Wd_autowatchdog Wd_env Wd_harness Wd_sim Wd_targets
