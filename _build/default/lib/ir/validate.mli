(** Whole-program static validation.

    Run after construction and again after instrumentation; catches dangling
    calls, arity mismatches, unknown primitives, unbound variables, duplicate
    function names and broken entries. Scoping matches the interpreter: one
    flat frame per function call. *)

type problem = { where : string; what : string }

val pp_problem : Format.formatter -> problem -> unit

val check : Ast.program -> (unit, problem list) result

val check_exn : Ast.program -> unit
(** Raises {!Ast.Ir_error} listing every problem found. *)
