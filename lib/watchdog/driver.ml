(* The watchdog driver (§3.1): schedules checkers, executes each one in an
   isolated task with a deadline, catches failure signatures (error, crash,
   hang, slowness), debounces and validates them, and surfaces reports to
   registered actions.

   Scheduling is a typed policy chosen at [create] (see [Schedule]):

   - [Schedule.fixed] (default): one daemon loop per checker sleeping its
     declared period — bit-for-bit the historical schedule.
   - [Schedule.adaptive _]: one central daemon loop owns every checker,
     batching co-scheduled runs behind a single context-version sampling
     pass, deduplicating runs whose context version is unchanged, and
     throttling cadence under load pressure within a hard latency bound.

   A hung or crashed checker never takes the driver down: execution goes
   through a per-entry [Sched.runner] — a persistent worker fiber with the
   exact virtual-time schedule of [Sched.timeout_join], minus the task
   spawn per run — which confines the checker to a worker the driver kills
   on timeout. *)

type entry = {
  checker : Checker.t;
  runner : Wd_sim.Sched.runner;
  mutable executions : int;
  mutable failures : int;
  mutable skips : int;
  mutable timeouts : int;
  mutable dedups : int; (* adaptive-schedule dedup skips; never ran *)
  mutable consecutive : int;
  mutable last_key : string;
  mutable last_report_at : int64;
  mutable lat_baseline : float; (* EWMA of fault-free run duration, ns *)
  mutable lat_samples : int;
  mutable task : Wd_sim.Sched.task option; (* fixed mode: per-checker loop *)
  mutable slot : Schedule.slot option; (* adaptive mode: scheduling state *)
}

type t = {
  sched : Wd_sim.Sched.t;
  policy : Policy.t;
  schedule : Schedule.t;
  (* dedup keys, memoised per (checker, failure kind, loc uid): a report
     storm from one site re-delivers the same key without re-formatting *)
  keys : (string * string * int, string) Hashtbl.t;
  mutable entries : entry list;
  mutable reports : Report.t list;
  mutable suppressed : Report.t list;
  mutable actions : (Report.t -> unit) list;
  mutable started : bool;
  mutable stopped : bool;
  mutable central : Wd_sim.Sched.task option; (* adaptive scheduling loop *)
}

let create ?(policy = Policy.default) ?(schedule = Schedule.fixed) sched =
  {
    sched;
    policy;
    schedule = Schedule.create schedule sched;
    keys = Hashtbl.create 64;
    entries = [];
    reports = [];
    suppressed = [];
    actions = [];
    started = false;
    stopped = false;
    central = None;
  }

let schedule t = t.schedule

let on_report t action = t.actions <- action :: t.actions

let report_key t r =
  let fkind = Report.fkind_name r.Report.fkind in
  let uid =
    match r.Report.loc with Some l -> Wd_ir.Loc.uid l | None -> min_int
  in
  let k = (r.Report.checker_id, fkind, uid) in
  match Hashtbl.find_opt t.keys k with
  | Some key -> key
  | None ->
      let key =
        r.Report.checker_id ^ "/" ^ fkind ^ "/"
        ^ (if uid = min_int then "-" else string_of_int uid)
      in
      Hashtbl.add t.keys k key;
      key

let deliver t entry (r : Report.t) =
  entry.consecutive <- entry.consecutive + 1;
  entry.failures <- entry.failures + 1;
  if entry.consecutive < t.policy.confirmations then ()
  else begin
    let key = report_key t r in
    let now = Wd_sim.Sched.now t.sched in
    let duplicate =
      String.equal key entry.last_key
      && Int64.sub now entry.last_report_at < t.policy.dedup_window
    in
    if duplicate then ()
    else begin
      entry.last_key <- key;
      entry.last_report_at <- now;
      (match (t.policy.validate, entry.checker.Checker.kind) with
      | Some validate, Checker.Mimic -> r.validated <- Some (validate r)
      | Some _, (Checker.Probe | Checker.Signal) | None, _ -> ());
      if t.policy.suppress_unvalidated && r.validated = Some false then
        t.suppressed <- r :: t.suppressed
      else begin
        t.reports <- r :: t.reports;
        List.iter (fun act -> act r) t.actions
      end
    end
  end

let run_once t entry =
  let c = entry.checker in
  entry.executions <- entry.executions + 1;
  let started = Wd_sim.Sched.now t.sched in
  let outcome =
    Wd_sim.Sched.runner_run entry.runner ~timeout:c.Checker.timeout
      (fun () -> c.Checker.run ~now:started)
  in
  let elapsed = Int64.sub (Wd_sim.Sched.now t.sched) started in
  match outcome with
  | Ok Checker.Pass ->
      let elapsed =
        match c.Checker.slow_elapsed () with Some d -> d | None -> elapsed
      in
      let slow_threshold =
        match c.Checker.slow_budget with
        | Some budget -> Some budget
        | None ->
            if entry.lat_samples >= t.policy.slow_min_samples then
              Some
                (max t.policy.slow_floor
                   (Int64.of_float (t.policy.slow_mult *. entry.lat_baseline)))
            else None
      in
      (match slow_threshold with
      | Some threshold when elapsed > threshold ->
          let loc, op_desc, payload = c.Checker.locate () in
          deliver t entry
            (Report.make ~at:(Wd_sim.Sched.now t.sched) ~checker_id:c.Checker.id
               ~fkind:Report.Slow ?loc ~op_desc ~payload ())
      | Some _ | None ->
          (* fold this normal run into the latency baseline *)
          let x = Int64.to_float elapsed in
          entry.lat_baseline <-
            (if entry.lat_samples = 0 then x
             else (0.8 *. entry.lat_baseline) +. (0.2 *. x));
          entry.lat_samples <- entry.lat_samples + 1;
          entry.consecutive <- 0)
  | Ok (Checker.Skip _) -> entry.skips <- entry.skips + 1
  | Ok (Checker.Fail r) -> deliver t entry r
  | Error `Timeout ->
      entry.timeouts <- entry.timeouts + 1;
      let loc, op_desc, payload = c.Checker.locate () in
      deliver t entry
        (Report.make ~at:(Wd_sim.Sched.now t.sched) ~checker_id:c.Checker.id
           ~fkind:Report.Hang ?loc ~op_desc ~payload ())
  | Error (`Exn e) ->
      let loc, op_desc, payload = c.Checker.locate () in
      let fkind =
        match e with
        | Wd_ir.Interp.Violation { vkind = "liveness"; msg; _ } ->
            (* try-lock timeout and friends: liveness, not a crash *)
            ignore msg;
            Report.Hang
        | Wd_ir.Interp.Violation { msg; _ } -> Report.Assert_fail msg
        | Wd_env.Disk.Io_error m
        | Wd_env.Net.Net_error m
        | Wd_env.Memory.Out_of_memory m ->
            Report.Error_sig m
        | e -> Report.Checker_crash (Printexc.to_string e)
      in
      deliver t entry
        (Report.make ~at:(Wd_sim.Sched.now t.sched) ~checker_id:c.Checker.id
           ~fkind ?loc ~op_desc ~payload ())
  | Error `Killed ->
      (* stop() raced with this execution; not a finding *)
      ()

(* The adaptive central loop: wake every quantum, close the pressure window
   if due, then dispatch the due checkers as one batch — a single context-
   version sampling pass, dedup decisions, runs charged to the window. *)
let central_loop t () =
  while not t.stopped do
    Wd_sim.Sched.sleep (Schedule.quantum t.schedule);
    if not t.stopped then begin
      Schedule.tick t.schedule;
      let due =
        List.filter
          (fun e ->
            match e.slot with
            | Some sl -> Schedule.due t.schedule sl
            | None -> false)
          (List.rev t.entries)
      in
      Schedule.begin_batch t.schedule
        (List.filter_map (fun e -> e.slot) due);
      List.iter
        (fun e ->
          match e.slot with
          | Some sl when not t.stopped -> (
              match Schedule.decide t.schedule sl with
              | `Skip_dedup -> e.dedups <- e.dedups + 1
              | `Run ->
                  let started = Wd_sim.Sched.now t.sched in
                  let _, _, ev0 = Wd_sim.Sched.stats t.sched in
                  run_once t e;
                  let _, _, ev1 = Wd_sim.Sched.stats t.sched in
                  Schedule.note_run t.schedule sl ~started
                    ~events_cost:(ev1 - ev0))
          | Some _ | None -> ())
        due
    end
  done

let ensure_central t =
  match t.central with
  | Some _ -> ()
  | None ->
      t.central <-
        Some
          (Wd_sim.Sched.spawn ~name:"wd:schedule" ~daemon:true t.sched
             (central_loop t))

(* Put a live entry on the schedule: its own daemon loop under a fixed
   policy, a slot of the central loop under an adaptive one. *)
let schedule_entry t entry =
  let checker = entry.checker in
  match Schedule.policy t.schedule with
  | Schedule.Fixed _ ->
      let period = Schedule.scaled_period t.schedule checker.Checker.period in
      let task =
        Wd_sim.Sched.spawn ~name:("wd:" ^ checker.Checker.id) ~daemon:true
          t.sched (fun () ->
            while not t.stopped do
              Wd_sim.Sched.sleep period;
              if not t.stopped then run_once t entry
            done)
      in
      entry.task <- Some task
  | Schedule.Adaptive _ ->
      entry.slot <-
        Some
          (Schedule.register t.schedule ~period:checker.Checker.period
             ?version:checker.Checker.ctx_version ());
      ensure_central t

let add_checker t checker =
  let entry =
    {
      checker;
      runner = Wd_sim.Sched.runner ~name:(checker.Checker.id ^ "#run") t.sched;
      executions = 0;
      failures = 0;
      skips = 0;
      timeouts = 0;
      dedups = 0;
      consecutive = 0;
      last_key = "";
      last_report_at = -1_000_000_000_000_000L; (* overflow-safe "never" *)
      lat_baseline = 0.0;
      lat_samples = 0;
      task = None;
      slot = None;
    }
  in
  t.entries <- entry :: t.entries;
  if t.started && not t.stopped then schedule_entry t entry

let start t =
  if t.started then invalid_arg "Driver.start: already started";
  t.started <- true;
  let pending = t.entries in
  t.entries <- [];
  List.iter (fun e -> add_checker t e.checker) pending

(* Workers are deliberately NOT killed here: a worker mid-checker keeps
   running to completion exactly like an in-flight [timeout_join] child
   did, and an idle worker parks on a daemon suspend — neither perturbs
   the schedule. Killing them would add runq activity that the historical
   stop() did not have (crash scenarios call stop mid-run and their
   schedules are digest-pinned). *)
let stop t =
  t.stopped <- true;
  List.iter
    (fun e ->
      match e.task with
      | Some task -> Wd_sim.Sched.kill t.sched task
      | None -> ())
    t.entries;
  match t.central with
  | Some task -> Wd_sim.Sched.kill t.sched task
  | None -> ()

let reports t = List.rev t.reports
let suppressed t = List.rev t.suppressed

let first_report t =
  match List.rev t.reports with [] -> None | r :: _ -> Some r

let first_report_where t pred =
  List.find_opt pred (List.rev t.reports)

type checker_stats = {
  cs_id : string;
  cs_kind : Checker.kind;
  cs_executions : int;
  cs_failures : int;
  cs_skips : int;
  cs_timeouts : int;
  cs_dedups : int;
}

let stats t =
  List.rev_map
    (fun e ->
      {
        cs_id = e.checker.Checker.id;
        cs_kind = e.checker.Checker.kind;
        cs_executions = e.executions;
        cs_failures = e.failures;
        cs_skips = e.skips;
        cs_timeouts = e.timeouts;
        cs_dedups = e.dedups;
      })
    t.entries

let checker_count t = List.length t.entries
