lib/ir/validate.mli: Ast Format
