(** Simulated message network with asynchronous delivery over an
    (optionally) asymmetric link fabric.

    Fault sites are ["net:<fabric>:send:<src>:<dst>"]; behaviours map to
    delivery delay ([Delay], [Slow_factor]), message loss ([Drop]), payload
    corruption flagging ([Corrupt]), sender-side failure ([Error]) and
    sender blocking ([Hang]).

    Each directed (src, dst) pair may carry a {!link_profile} overriding
    the fabric-wide base latency and bounding bandwidth. Bandwidth is
    store-and-forward: a message of [size] bytes serialises onto the link
    for size/rate seconds after any message still transmitting, then
    propagates. All of it runs off the virtual clock and the fabric RNG, so
    the delivery schedule is byte-identical for a given seed. *)

exception Net_error of string

type 'a envelope = {
  src : string;
  dst : string;
  payload : 'a;
  sent_at : int64;
  corrupted : bool;
}

type link_profile = {
  lp_latency : int64 option;
      (** propagation latency for this direction; [None] = fabric base *)
  lp_bytes_per_sec : int option;  (** [None] = unbounded bandwidth *)
}

type 'a t

val create :
  ?base_latency:int64 -> reg:Faultreg.t -> rng:Wd_sim.Rng.t -> string -> 'a t

val name : 'a t -> string
val register : 'a t -> string -> unit
val exists : 'a t -> string -> bool
(** O(1) endpoint-membership test. *)

val ensure_registered : 'a t -> string -> unit
(** Register the endpoint unless it already exists. O(1) on the hot path,
    unlike scanning {!endpoints}. *)

val endpoints : 'a t -> string list
val inbox_length : 'a t -> string -> int

val set_link_profile : 'a t -> src:string -> dst:string -> link_profile -> unit
(** Profile one direction of one link. Directions are independent, so an
    asymmetric fabric (fast one way, slow or narrow the other) is two
    profiles. Unprofiled links keep the fabric-wide base latency and
    unbounded bandwidth. *)

val link_profile : 'a t -> src:string -> dst:string -> link_profile option

val send :
  ?site_dst:string -> ?size:int -> 'a t -> src:string -> dst:string -> 'a -> unit
(** Asynchronous; returns once the message is committed to the fabric.
    Blocks only under a [Hang] fault; raises {!Net_error} under [Error].
    [site_dst] overrides the destination used for fault-site matching, so a
    redirected (shadow-inbox) send shares the fate of the real link.
    [size] (bytes, default 0) only matters on bandwidth-bounded links,
    where it sets the serialisation delay. *)

val recv : 'a t -> string -> 'a envelope
(** Blocks until a message arrives at the endpoint. *)

val recv_timeout : 'a t -> string -> timeout:int64 -> 'a envelope option
val try_recv : 'a t -> string -> 'a envelope option

val stats : 'a t -> int * int * int
(** [(sent, delivered, dropped)]. *)
