lib/analysis/regions.mli: Format Wd_ir
