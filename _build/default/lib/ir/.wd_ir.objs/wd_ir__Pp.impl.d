lib/ir/pp.ml: Ast Fmt List String Wd_sim
