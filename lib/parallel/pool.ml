(* Persistent work-sharing domain pool.

   A pool of [width] lanes is backed by [width - 1] worker domains plus the
   submitting domain itself: [map] enqueues one *participation thunk* per
   worker (a single mutex acquisition for the whole batch, however large)
   and then drains the batch from the calling domain too, so no domain —
   least of all the caller — sits blocked on a condvar while there is work
   left. Inside a batch, cells are handed out by an [Atomic.t] cursor
   (fetch-and-add per cell), so the hot path takes no lock at all: a
   10^4-cell batch costs 10^4 atomic increments, not 10^4 mutex sections.

   Pools are cheap to keep alive (idle workers block on a condvar), so the
   intended usage is one process-wide pool created once and reused by every
   batch — [global]/[run_map] below. Worker domains then retain their
   domain-local analysis/compile caches across batches, which is where the
   campaign engine's reuse lives.

   Determinism: results are collected by input index, not completion order,
   and exceptions are re-raised for the lowest failing index — so a
   parallel batch is observationally identical to the sequential one.
   Distinct result slots are written by at most one domain and read by the
   caller only after the remaining-counter (an [Atomic.t]) plus the batch
   mutex have established the necessary happens-before edges. *)

type job = unit -> unit

type t = {
  width : int;
  queue : job Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let default_jobs () =
  match (Wd_config.Env.get ()).Wd_config.Env.jobs with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* Per-domain minor heap size, in words. OCaml 5 gives every domain its own
   minor arena, and minor collections are stop-the-world across domains —
   so on allocation-heavy simulation batches a larger arena trades memory
   for fewer global pauses. [WD_MINOR_HEAP] overrides the runtime default
   for every pool lane (workers at spawn, the submitting domain at pool
   creation); values below the runtime's 16k-word floor are ignored. *)
let minor_heap_words () =
  (Wd_config.Env.get ()).Wd_config.Env.minor_heap_words

let apply_minor_heap () =
  match minor_heap_words () with
  | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }
  | None -> ()

let rec worker_loop pool =
  Mutex.lock pool.mu;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mu
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mu (* closed: exit *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mu;
    job ();
    worker_loop pool
  end

(* [default_jobs] already counts the submitting domain as one lane, so a
   width-W pool spawns W-1 workers; the caller is the W-th lane during
   [map]. Spawning W workers — the old behaviour — oversubscribed the host
   by one domain and left the caller parked on a condvar. *)
let create ~jobs =
  let width = max 1 jobs in
  let pool =
    {
      width;
      queue = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  apply_minor_heap ();
  if width > 1 then
    pool.workers <-
      List.init (width - 1)
        (fun _ ->
          Domain.spawn (fun () ->
              apply_minor_heap ();
              worker_loop pool));
  pool

let jobs pool = pool.width

let shutdown pool =
  let workers =
    Mutex.lock pool.mu;
    let ws = pool.workers in
    pool.closed <- true;
    pool.workers <- [];
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mu;
    ws
  in
  List.iter Domain.join workers

let submit pool jobs_ =
  Mutex.lock pool.mu;
  if pool.closed then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.map: pool is shut down"
  end;
  List.iter (fun j -> Queue.push j pool.queue) jobs_;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mu

let map pool f xs =
  if pool.closed then invalid_arg "Pool.map: pool is shut down";
  if pool.width <= 1 || List.compare_length_with xs 2 < 0 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let batch_mu = Mutex.create () in
    let batch_done = Condition.create () in
    (* Work-sharing drain loop, run by every participating domain: claim
       the next unclaimed cell, run it, repeat until the cursor runs off
       the end. Leftover participation thunks that a busy worker only pops
       after the batch completed see an exhausted cursor and return
       immediately. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f inputs.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock batch_mu;
          Condition.broadcast batch_done;
          Mutex.unlock batch_mu
        end;
        drain ()
      end
    in
    submit pool (List.init (min (pool.width - 1) n) (fun _ -> drain));
    drain ();
    (* The caller ran out of cells to claim; wait for in-flight ones. *)
    Mutex.lock batch_mu;
    while Atomic.get remaining > 0 do
      Condition.wait batch_done batch_mu
    done;
    Mutex.unlock batch_mu;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error _) | None -> assert false)
         results)
  end

let map_reduce pool ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map pool f xs)

let with_pool ?jobs f =
  let pool = create ~jobs:(match jobs with Some n -> n | None -> default_jobs ()) in
  match f pool with
  | v ->
      shutdown pool;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown pool;
      Printexc.raise_with_backtrace e bt

(* --- the process-wide persistent pool --- *)

let global_mu = Mutex.create ()
let global_ref = ref None
let registered_at_exit = ref false

(* Running more domains than the host has cores is a measured net loss —
   OCaml 5 minor collections are stop-the-world across domains, and on an
   oversubscribed host every minor GC becomes a scheduling round trip (5x
   on allocation-heavy simulation cells in our measurements). The shared
   pool therefore clamps the requested width to the hardware; determinism
   is unaffected (results are collected by input index at any width). *)
let effective_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

let global ?jobs () =
  let want =
    effective_jobs (match jobs with Some n -> max 1 n | None -> default_jobs ())
  in
  Mutex.lock global_mu;
  match !global_ref with
  | Some p when p.width = want && not p.closed ->
      Mutex.unlock global_mu;
      p
  | prev ->
      let p = create ~jobs:want in
      global_ref := Some p;
      if not !registered_at_exit then begin
        registered_at_exit := true;
        at_exit (fun () ->
            match !global_ref with Some p -> shutdown p | None -> ())
      end;
      Mutex.unlock global_mu;
      (match prev with Some old -> shutdown old | None -> ());
      p

let run_map ?jobs f xs = map (global ?jobs ()) f xs
