lib/harness/systems.mli: Wd_autowatchdog Wd_detectors Wd_env Wd_ir Wd_sim Wd_targets Wd_watchdog
