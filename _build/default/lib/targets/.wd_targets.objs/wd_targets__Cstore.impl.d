lib/targets/cstore.ml: Ast Builder Interp List Rpcq Runtime String Wd_env Wd_ir Wd_sim
